//! Figure 12: distance between the predicted and actual Pareto fronts.
//!
//! Two GP models are trained (one optimizing ET, one EC); their
//! predictions over the whole space form the predicted front, which is
//! compared against the ground-truth front using the Figure 11 metric
//! (`d_t`, `d_c` components, normalized by the nearest actual point).
//! Paper headline: average distance up to 20% (cost) and 25% (time).

use freedom::interfaces::predicted_pareto_options;
use freedom_linalg::stats;
use freedom_optimizer::pareto::{front_distance, pareto_front, BiPoint};
use freedom_optimizer::{BayesianOptimizer, BoConfig, Objective, SearchSpace, TableEvaluator};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, par_repeats, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// One function's front distances.
#[derive(Debug, Clone)]
pub struct DistanceRow {
    /// Function measured.
    pub function: FunctionKind,
    /// Mean execution-time distance component over repetitions.
    pub dt: f64,
    /// Mean execution-cost distance component over repetitions.
    pub dc: f64,
    /// Size of the predicted front in the last repetition.
    pub front_size: usize,
}

/// The full Figure 12 dataset.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Per-function rows.
    pub rows: Vec<DistanceRow>,
}

impl Fig12Result {
    /// Renders the distance table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["function", "d_t", "d_c", "front size"]);
        for r in &self.rows {
            t.row(vec![
                r.function.to_string(),
                fmt_f(r.dt, 3),
                fmt_f(r.dc, 3),
                r.front_size.to_string(),
            ]);
        }
        format!(
            "Figure 12 — normalized avg distance, predicted vs actual Pareto front\n{}\n(paper: d_t ≤ ~0.25, d_c ≤ ~0.20)\n",
            t.render()
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec!["function", "dt", "dc", "front_size"]);
        for r in &self.rows {
            t.row(vec![
                r.function.to_string(),
                r.dt.to_string(),
                r.dc.to_string(),
                r.front_size.to_string(),
            ]);
        }
        t.write_csv("fig12_pareto_distance.csv")
    }
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<Fig12Result> {
    let space = SearchSpace::table1();
    let rows = par_map(opts, &FunctionKind::ALL, |&kind| {
        let table = ground_truth_default(kind, opts)?;
        let actual: Vec<BiPoint> = pareto_front(
            &table
                .feasible()
                .map(|p| (p.exec_time_secs, p.exec_cost_usd))
                .collect::<Vec<_>>(),
        );
        let mut dts = Vec::with_capacity(opts.opt_repeats);
        let mut dcs = Vec::with_capacity(opts.opt_repeats);
        let mut front_size = 0;
        let per_rep = par_repeats(opts, |rep| -> freedom::Result<_> {
            let seed = opts.repeat_seed(rep);
            // Two optimization processes, as §6.1 prescribes.
            let mut models = Vec::with_capacity(2);
            let mut normalizers = Vec::with_capacity(2);
            for (i, objective) in [Objective::ExecutionTime, Objective::ExecutionCost]
                .into_iter()
                .enumerate()
            {
                let optimizer = BayesianOptimizer::new(
                    SurrogateKind::Gp,
                    BoConfig {
                        seed: seed ^ (i as u64) << 16,
                        budget: opts.budget,
                        surrogate_refit_every: opts.surrogate_refit_every,
                        ..BoConfig::default()
                    },
                );
                let mut evaluator = TableEvaluator::new(&table);
                let run = optimizer.optimize(&space, &mut evaluator, objective)?;
                let model = optimizer
                    .fit_on_trials(&run.trials, objective, seed)
                    .ok_or_else(|| {
                        freedom::FreedomError::InsufficientData("model fit failed".into())
                    })?;
                let (bt, bc) = run.bt_bc();
                normalizers.push(match objective {
                    Objective::ExecutionTime => bt,
                    _ => bc,
                });
                models.push(model);
            }
            // Offer only configurations the runs did not slice away as
            // OOM-infeasible (what the real interface would expose).
            let feasible_space =
                SearchSpace::from_configs(table.feasible().map(|p| p.config).collect());
            let options = predicted_pareto_options(
                models[0].as_ref(),
                models[1].as_ref(),
                &feasible_space,
                normalizers[0],
                normalizers[1],
                usize::MAX >> 1,
            )?;
            let predicted: Vec<BiPoint> = options
                .iter()
                .map(|o| (o.predicted_time_secs, o.predicted_cost_usd))
                .collect();
            Ok((predicted.len(), front_distance(&predicted, &actual)))
        });
        for r in per_rep {
            let (size, distance) = r?;
            front_size = size;
            if let Some((dt, dc)) = distance {
                dts.push(dt);
                dcs.push(dc);
            }
        }
        Ok(DistanceRow {
            function: kind,
            dt: stats::mean(&dts).unwrap_or(f64::NAN),
            dc: stats::mean(&dcs).unwrap_or(f64::NAN),
            front_size,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(Fig12Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicted_fronts_land_near_actual_ones() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.rows.len(), 6);
        for r in &result.rows {
            assert!(
                r.dt.is_finite() && r.dt >= 0.0,
                "{}: dt {}",
                r.function,
                r.dt
            );
            assert!(
                r.dc.is_finite() && r.dc >= 0.0,
                "{}: dc {}",
                r.function,
                r.dc
            );
            // Paper scale: ≤ ~0.25; allow slack for the fast test settings.
            assert!(r.dt < 0.8, "{}: dt {}", r.function, r.dt);
            assert!(r.front_size >= 1);
        }
        assert!(result.render().contains("Figure 12"));
    }
}

//! Figure 13: convergence of weighted multi-objective optimization
//! (BO with GP) for the three paper weightings, normalized to the best
//! weighted objective value in the space.

use freedom_linalg::stats;
use freedom_optimizer::eval::table_normalizers;
use freedom_optimizer::{BayesianOptimizer, BoConfig, Objective, SearchSpace, TableEvaluator};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, par_repeats, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// One (weighting, function) convergence trace, normalized so 1.0 is the
/// best weighted value in the space.
#[derive(Debug, Clone)]
pub struct WeightedTrace {
    /// Function measured.
    pub function: FunctionKind,
    /// Mean normalized best-so-far after each trial.
    pub norm_by_step: Vec<f64>,
}

/// One panel per weighting.
#[derive(Debug, Clone)]
pub struct WeightPanel {
    /// The weighting (`wt`, `wc`).
    pub objective: Objective,
    /// Traces per function.
    pub traces: Vec<WeightedTrace>,
}

/// The full Figure 13 dataset.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// Panels for `W_t ∈ {0.25, 0.5, 0.75}`.
    pub panels: Vec<WeightPanel>,
}

impl Fig13Result {
    /// Renders one table per weighting at selected steps.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 13 — weighted multi-objective convergence (norm.)\n");
        for panel in &self.panels {
            let steps: Vec<usize> = [3, 7, 11, 15, 19]
                .into_iter()
                .filter(|&s| {
                    panel
                        .traces
                        .first()
                        .map(|t| s < t.norm_by_step.len())
                        .unwrap_or(false)
                })
                .collect();
            let mut headers = vec!["function".to_string()];
            headers.extend(steps.iter().map(|s| format!("trial {}", s + 1)));
            let mut t = TextTable::new(headers);
            for trace in &panel.traces {
                let mut row = vec![trace.function.to_string()];
                for &s in &steps {
                    row.push(fmt_f(trace.norm_by_step[s], 3));
                }
                t.row(row);
            }
            out.push_str(&format!("\n{}:\n{}", panel.objective, t.render()));
        }
        out
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec!["objective", "function", "trial", "norm_best"]);
        for panel in &self.panels {
            for trace in &panel.traces {
                for (step, v) in trace.norm_by_step.iter().enumerate() {
                    t.row(vec![
                        panel.objective.to_string(),
                        trace.function.to_string(),
                        (step + 1).to_string(),
                        v.to_string(),
                    ]);
                }
            }
        }
        t.write_csv("fig13_weighted_mo.csv")
    }
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<Fig13Result> {
    let space = SearchSpace::table1();
    let mut panels = Vec::with_capacity(3);
    for objective in Objective::paper_weight_grid() {
        let traces = par_map(opts, &FunctionKind::ALL, |&kind| {
            let table = ground_truth_default(kind, opts)?;
            // Ground-truth best weighted value, normalized with the
            // table's own Bt/Bc (the oracle target).
            let (bt, bc) = table_normalizers(&table);
            let truth = table
                .feasible()
                .map(|p| objective.value_of(p.exec_time_secs, p.exec_cost_usd, bt, bc))
                .fold(f64::INFINITY, f64::min);
            // curves[rep][step]; repetitions fan out across cores.
            let curves = par_repeats(opts, |rep| -> freedom::Result<Vec<f64>> {
                let mut evaluator = TableEvaluator::new(&table);
                let run = BayesianOptimizer::new(
                    SurrogateKind::Gp,
                    BoConfig {
                        seed: opts.repeat_seed(rep),
                        budget: opts.budget,
                        surrogate_refit_every: opts.surrogate_refit_every,
                        ..BoConfig::default()
                    },
                )
                .optimize(&space, &mut evaluator, objective)?;
                // Re-score the best-so-far curve with the oracle Bt/Bc so
                // curves are comparable across repetitions.
                let mut best = f64::INFINITY;
                let curve: Vec<f64> = run
                    .trials
                    .iter()
                    .map(|t| {
                        if !t.failed {
                            let v = objective.value_of(t.exec_time_secs, t.exec_cost_usd, bt, bc);
                            best = best.min(v);
                        }
                        best / truth
                    })
                    .collect();
                let mut curve = curve;
                curve.resize(opts.budget, *curve.last().unwrap_or(&f64::NAN));
                Ok(curve)
            })
            .into_iter()
            .collect::<freedom::Result<Vec<Vec<f64>>>>()?;
            let norm_by_step: Vec<f64> = (0..opts.budget)
                .map(|step| {
                    let vals: Vec<f64> = curves
                        .iter()
                        .map(|c| c[step])
                        .filter(|v| v.is_finite())
                        .collect();
                    stats::mean(&vals).unwrap_or(f64::NAN)
                })
                .collect();
            Ok(WeightedTrace {
                function: kind,
                norm_by_step,
            })
        })
        .into_iter()
        .collect::<freedom::Result<Vec<_>>>()?;
        panels.push(WeightPanel { objective, traces });
    }
    Ok(Fig13Result { panels })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_runs_approach_the_best_weighted_value() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.panels.len(), 3);
        for panel in &result.panels {
            assert_eq!(panel.traces.len(), 6);
            for trace in &panel.traces {
                let last = *trace.norm_by_step.last().unwrap();
                // Normalized values are ≥ 1 and the paper reports within
                // ~20% after 20 trials (fast mode gets slack).
                assert!(last >= 1.0 - 1e-9, "{}: {last}", trace.function);
                assert!(last < 1.8, "{}: {last}", trace.function);
                for w in trace.norm_by_step.windows(2) {
                    assert!(w[1] <= w[0] + 1e-9, "curve rose");
                }
            }
        }
        assert!(result.render().contains("Figure 13"));
    }
}

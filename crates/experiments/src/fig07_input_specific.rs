//! Figure 7: generic vs. data-specific optimization vs. the ideal
//! configuration, per input sample (§5.3).
//!
//! The generic model is trained on the default input only; its recommended
//! configuration is then applied to every other input. The data-specific
//! model re-optimizes per input. The paper finds data-specific gains of at
//! most ~20%, and that `linpack` N=7500 OOMs under the generic
//! configuration in 3 of 10 repetitions (the default-input optimum is
//! indifferent to memory, so some repetitions pick a limit the larger
//! matrix no longer fits).

use freedom_linalg::stats;
use freedom_optimizer::{BayesianOptimizer, BoConfig, Objective, SearchSpace, TableEvaluator};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::{FunctionKind, InputData, InputId};

use crate::context::{ground_truth, par_map, par_repeats, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// One (function, input) comparison row, aggregated over repetitions.
#[derive(Debug, Clone)]
pub struct InputRow {
    /// Function measured.
    pub function: FunctionKind,
    /// Input sample.
    pub input: InputId,
    /// Median ET of the generic configurations that *work* on this input;
    /// `None` when every repetition's generic configuration fails here.
    pub generic_et: Option<f64>,
    /// Fraction of repetitions whose generic configuration OOMs here.
    pub generic_oom_rate: f64,
    /// Median ET of the per-input (data-specific) configurations.
    pub specific_et: f64,
    /// Best ET in this input's ground-truth table.
    pub ideal_et: f64,
}

/// The full Figure 7 dataset.
#[derive(Debug, Clone)]
pub struct Fig07Result {
    /// All rows, grouped by function in dataset order.
    pub rows: Vec<InputRow>,
}

impl Fig07Result {
    /// The largest generic-over-specific ET ratio among inputs where the
    /// generic configuration works (paper: ≤ ~1.2).
    pub fn max_specific_gain(&self) -> f64 {
        self.rows
            .iter()
            .filter_map(|r| r.generic_et.map(|g| g / r.specific_et))
            .fold(1.0, f64::max)
    }

    /// Renders the per-input table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "function",
            "input",
            "generic ET",
            "generic OOM rate",
            "data-specific ET",
            "ideal ET",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.function.to_string(),
                r.input.to_string(),
                r.generic_et
                    .map(|v| fmt_f(v, 3))
                    .unwrap_or_else(|| "OOM".to_string()),
                format!("{}%", fmt_f(r.generic_oom_rate * 100.0, 0)),
                fmt_f(r.specific_et, 3),
                fmt_f(r.ideal_et, 3),
            ]);
        }
        format!(
            "Figure 7 — generic vs data-specific vs ideal (execution time, s)\n{}\nmax data-specific gain: {}x (paper: ≤ ~1.2x)\n",
            t.render(),
            fmt_f(self.max_specific_gain(), 2),
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec![
            "function",
            "input",
            "generic_et",
            "generic_oom_rate",
            "specific_et",
            "ideal_et",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.function.to_string(),
                r.input.to_string(),
                r.generic_et.map(|v| v.to_string()).unwrap_or_default(),
                r.generic_oom_rate.to_string(),
                r.specific_et.to_string(),
                r.ideal_et.to_string(),
            ]);
        }
        t.write_csv("fig07_input_specific.csv")
    }
}

fn optimize_on(
    table: &freedom_faas::PerfTable,
    opts: &ExperimentOpts,
    seed: u64,
) -> freedom::Result<freedom_faas::ResourceConfig> {
    let mut evaluator = TableEvaluator::new(table);
    let run = BayesianOptimizer::new(
        SurrogateKind::Gp,
        BoConfig {
            seed,
            budget: opts.budget,
            surrogate_refit_every: opts.surrogate_refit_every,
            ..BoConfig::default()
        },
    )
    .optimize(
        &SearchSpace::table1(),
        &mut evaluator,
        Objective::ExecutionTime,
    )?;
    run.best_feasible()
        .map(|t| t.config)
        .ok_or_else(|| freedom::FreedomError::InsufficientData("no feasible trial".into()))
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<Fig07Result> {
    let per_function = par_map(opts, &FunctionKind::ALL, |&kind| {
        // Train generic configurations (one per repetition) on the default
        // input, mirroring the paper's 10 repeated optimization processes.
        let default_table = ground_truth(kind, &kind.default_input(), opts)?;
        let generic_configs: Vec<freedom_faas::ResourceConfig> = par_repeats(opts, |rep| {
            optimize_on(&default_table, opts, opts.repeat_seed(rep))
        })
        .into_iter()
        .collect::<freedom::Result<_>>()?;

        let inputs: Vec<InputData> = kind.inputs();
        let indexed: Vec<(usize, InputData)> = inputs.into_iter().enumerate().collect();
        let rows = par_map(opts, &indexed, |(i, input)| {
            let i = *i;
            let table = ground_truth(kind, input, opts)?;
            let ideal_et = table
                .best_by_time()
                .map(|p| p.exec_time_secs)
                .ok_or_else(|| {
                    freedom::FreedomError::InsufficientData(format!(
                        "no feasible config for {kind} on {}",
                        input.id()
                    ))
                })?;
            // Data-specific configurations, re-optimized per repetition.
            let specific_ets: Vec<f64> = par_repeats(opts, |rep| {
                let cfg = optimize_on(&table, opts, opts.repeat_seed(rep) ^ (i as u64 + 1) << 24)?;
                Ok(table
                    .lookup(&cfg)
                    .map(|p| p.exec_time_secs)
                    .unwrap_or(f64::NAN))
            })
            .into_iter()
            .collect::<freedom::Result<_>>()?;
            // Apply each repetition's generic configuration to this input.
            let mut generic_ets = Vec::new();
            let mut ooms = 0usize;
            for cfg in &generic_configs {
                match table.lookup(cfg) {
                    Some(p) if !p.failed => generic_ets.push(p.exec_time_secs),
                    _ => ooms += 1,
                }
            }
            Ok(InputRow {
                function: kind,
                input: input.id(),
                generic_et: stats::median(&generic_ets),
                generic_oom_rate: ooms as f64 / generic_configs.len().max(1) as f64,
                specific_et: stats::median(&specific_ets).unwrap_or(f64::NAN),
                ideal_et,
            })
        })
        .into_iter()
        .collect::<freedom::Result<Vec<InputRow>>>()?;
        Ok(rows)
    })
    .into_iter()
    .collect::<freedom::Result<Vec<Vec<InputRow>>>>()?;
    Ok(Fig07Result {
        rows: per_function.into_iter().flatten().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_configs_transfer_across_inputs() {
        let opts = ExperimentOpts {
            opt_repeats: 4,
            ..ExperimentOpts::fast()
        };
        let result = run(&opts).unwrap();
        // 5 inputs × 5 functions + 3 linpack inputs.
        assert_eq!(result.rows.len(), 28);
        // The paper's headline: good configurations transfer; the generic
        // config is within ~20-30% of the data-specific one wherever it
        // runs at all.
        let gain = result.max_specific_gain();
        assert!(gain < 1.6, "specific gain {gain} too large");
        // linpack N=7500 is the fragile case: its matrix does not fit some
        // generic memory choices. The rate is seed-dependent (paper: 3/10);
        // what must hold structurally is that a 512 MiB generic pick OOMs.
        let linpack_7500 = result
            .rows
            .iter()
            .find(|r| r.function == FunctionKind::Linpack && r.input.to_string() == "7500")
            .unwrap();
        assert!(
            (0.0..=1.0).contains(&linpack_7500.generic_oom_rate),
            "rate {}",
            linpack_7500.generic_oom_rate
        );
        let table_7500 =
            ground_truth(FunctionKind::Linpack, &InputData::Matrix { n: 7500 }, &opts).unwrap();
        let small_mem =
            freedom_faas::ResourceConfig::new(freedom_cluster::InstanceFamily::M5, 1.0, 512)
                .unwrap();
        assert!(table_7500.lookup(&small_mem).unwrap().failed);
        // Every other function's generic config works on all its inputs.
        for r in &result.rows {
            if r.function != FunctionKind::Linpack {
                assert_eq!(r.generic_oom_rate, 0.0, "{} on {}", r.function, r.input);
            }
            assert!(r.specific_et >= r.ideal_et * 0.999, "{:?}", r);
        }
        assert!(result.render().contains("Figure 7"));
    }
}

//! Shared experiment configuration, ground-truth collection, and the
//! scoped-thread fan-out every experiment kernel uses for its
//! `opt_repeats × functions × objectives` loops.

use freedom_faas::{collect_ground_truth, PerfTable};
use freedom_optimizer::SearchSpace;
use freedom_workloads::{FunctionKind, InputData};

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOpts {
    /// Repetitions per configuration in ground-truth sweeps (paper: ≥5).
    pub gt_reps: usize,
    /// Independent repetitions of each optimization process (paper: 10).
    pub opt_repeats: usize,
    /// Trial budget per optimization (paper: 20).
    pub budget: usize,
    /// Base seed; repetition `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads for [`par_map`]/[`par_repeats`]: 0 = one per core,
    /// 1 = fully sequential (results are bit-identical either way).
    pub threads: usize,
    /// Full hyperparameter-search cadence of the BO loops' GP surrogate
    /// (`BoConfig::surrogate_refit_every`); 1 reproduces the naive
    /// from-scratch refit at every step. Honored by every experiment that
    /// constructs its own `BoConfig` or `Autotuner`; the interface-driven
    /// kernels (fig14's hierarchical interface) use the default cadence.
    pub surrogate_refit_every: usize,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        Self {
            gt_reps: 5,
            opt_repeats: 10,
            budget: 20,
            seed: 42,
            threads: 0,
            surrogate_refit_every: 4,
        }
    }
}

impl ExperimentOpts {
    /// Reduced settings for benches and smoke tests: the same code paths
    /// at a fraction of the repetitions.
    pub fn fast() -> Self {
        Self {
            gt_reps: 2,
            opt_repeats: 2,
            budget: 12,
            seed: 42,
            threads: 0,
            surrogate_refit_every: 4,
        }
    }

    /// This configuration with an explicit worker-thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }

    /// The effective worker count: the configured `threads`, or
    /// `FREEDOM_THREADS` from the environment, or one per core.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("FREEDOM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Seed for optimization repetition `i`.
    pub fn repeat_seed(&self, i: usize) -> u64 {
        self.seed.wrapping_add(1 + i as u64)
    }

    /// Parses experiment options from CLI arguments.
    ///
    /// Supported flags: `--fast` (reduced settings), `--seed N`,
    /// `--gt-reps N`, `--repeats N`, `--budget N`, `--threads N`
    /// (0 = one per core, 1 = sequential), `--refit-every N` (GP full
    /// refit cadence; 1 = from-scratch every step). Unknown flags are
    /// ignored so binaries can add their own.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = if args.iter().any(|a| a == "--fast") {
            Self::fast()
        } else {
            Self::default()
        };
        let value_of = |flag: &str| -> Option<u64> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        if let Some(v) = value_of("--seed") {
            opts.seed = v;
        }
        if let Some(v) = value_of("--gt-reps") {
            opts.gt_reps = v as usize;
        }
        if let Some(v) = value_of("--repeats") {
            opts.opt_repeats = v as usize;
        }
        if let Some(v) = value_of("--budget") {
            opts.budget = (v as usize).max(4);
        }
        if let Some(v) = value_of("--threads") {
            opts.threads = v as usize;
        }
        if let Some(v) = value_of("--refit-every") {
            opts.surrogate_refit_every = (v as usize).max(1);
        }
        opts
    }
}

/// Deterministic index-ordered fan-out; see [`freedom_parallel::par_run`].
///
/// Re-exported here so every experiment kernel keeps importing it from
/// `context`; the implementation (and the process-wide worker budget it
/// shares with the fleet simulator's trace shards) lives in the
/// `freedom-parallel` crate.
pub use freedom_parallel::par_run;

/// Fans the `opts.opt_repeats` optimization repetitions across cores;
/// repetition `i` runs `f(i)` (seed it with [`ExperimentOpts::repeat_seed`]).
pub fn par_repeats<T, F>(opts: &ExperimentOpts, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_run(opts.opt_repeats, opts.effective_threads(), f)
}

/// Maps `f` over `items` in parallel, preserving order (used to fan out
/// over functions and objectives).
pub fn par_map<I, T, F>(opts: &ExperimentOpts, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_run(items.len(), opts.effective_threads(), |i| f(&items[i]))
}

/// Collects the full Table 1 ground truth for one function and input.
pub fn ground_truth(
    kind: FunctionKind,
    input: &InputData,
    opts: &ExperimentOpts,
) -> freedom_faas::Result<PerfTable> {
    collect_ground_truth(
        kind,
        input,
        SearchSpace::table1().configs(),
        opts.gt_reps,
        opts.seed,
    )
}

/// Ground truth on the function's default input.
pub fn ground_truth_default(
    kind: FunctionKind,
    opts: &ExperimentOpts,
) -> freedom_faas::Result<PerfTable> {
    ground_truth(kind, &kind.default_input(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let o = ExperimentOpts::default();
        assert_eq!(o.gt_reps, 5);
        assert_eq!(o.opt_repeats, 10);
        assert_eq!(o.budget, 20);
    }

    #[test]
    fn fast_mode_is_cheaper() {
        let f = ExperimentOpts::fast();
        let d = ExperimentOpts::default();
        assert!(f.gt_reps < d.gt_reps);
        assert!(f.opt_repeats < d.opt_repeats);
        assert!(f.budget < d.budget);
    }

    #[test]
    fn repeat_seeds_are_distinct() {
        let o = ExperimentOpts::default();
        assert_ne!(o.repeat_seed(0), o.repeat_seed(1));
        assert_ne!(o.repeat_seed(0), o.seed);
    }

    #[test]
    fn ground_truth_covers_the_space() {
        let opts = ExperimentOpts::fast();
        let t = ground_truth_default(FunctionKind::S3, &opts).unwrap();
        assert_eq!(t.points().len(), 288);
    }

    #[test]
    fn par_run_matches_sequential_in_order() {
        let f = |i: usize| (i * 31) % 17;
        let seq: Vec<usize> = (0..100).map(f).collect();
        for threads in [1, 2, 8, 64] {
            assert_eq!(par_run(100, threads, f), seq, "threads = {threads}");
        }
        assert!(par_run(0, 4, f).is_empty());
    }

    #[test]
    fn par_helpers_respect_thread_knobs() {
        let opts = ExperimentOpts::fast().with_threads(3);
        assert_eq!(opts.effective_threads(), 3);
        let reps: Vec<u64> = par_repeats(&opts, |i| opts.repeat_seed(i));
        assert_eq!(reps.len(), opts.opt_repeats);
        assert_eq!(reps[0], opts.repeat_seed(0));
        let doubled = par_map(&opts, &[1u32, 2, 3, 4], |v| v * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_run_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            par_run(8, 4, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}

//! Shared experiment configuration and ground-truth collection.

use freedom_faas::{collect_ground_truth, PerfTable};
use freedom_optimizer::SearchSpace;
use freedom_workloads::{FunctionKind, InputData};

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOpts {
    /// Repetitions per configuration in ground-truth sweeps (paper: ≥5).
    pub gt_reps: usize,
    /// Independent repetitions of each optimization process (paper: 10).
    pub opt_repeats: usize,
    /// Trial budget per optimization (paper: 20).
    pub budget: usize,
    /// Base seed; repetition `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        Self {
            gt_reps: 5,
            opt_repeats: 10,
            budget: 20,
            seed: 42,
        }
    }
}

impl ExperimentOpts {
    /// Reduced settings for benches and smoke tests: the same code paths
    /// at a fraction of the repetitions.
    pub fn fast() -> Self {
        Self {
            gt_reps: 2,
            opt_repeats: 2,
            budget: 12,
            seed: 42,
        }
    }

    /// Seed for optimization repetition `i`.
    pub fn repeat_seed(&self, i: usize) -> u64 {
        self.seed.wrapping_add(1 + i as u64)
    }

    /// Parses experiment options from CLI arguments.
    ///
    /// Supported flags: `--fast` (reduced settings), `--seed N`,
    /// `--gt-reps N`, `--repeats N`, `--budget N`. Unknown flags are
    /// ignored so binaries can add their own.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = if args.iter().any(|a| a == "--fast") {
            Self::fast()
        } else {
            Self::default()
        };
        let value_of = |flag: &str| -> Option<u64> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        if let Some(v) = value_of("--seed") {
            opts.seed = v;
        }
        if let Some(v) = value_of("--gt-reps") {
            opts.gt_reps = v as usize;
        }
        if let Some(v) = value_of("--repeats") {
            opts.opt_repeats = v as usize;
        }
        if let Some(v) = value_of("--budget") {
            opts.budget = (v as usize).max(4);
        }
        opts
    }
}

/// Collects the full Table 1 ground truth for one function and input.
pub fn ground_truth(
    kind: FunctionKind,
    input: &InputData,
    opts: &ExperimentOpts,
) -> freedom_faas::Result<PerfTable> {
    collect_ground_truth(
        kind,
        input,
        SearchSpace::table1().configs(),
        opts.gt_reps,
        opts.seed,
    )
}

/// Ground truth on the function's default input.
pub fn ground_truth_default(
    kind: FunctionKind,
    opts: &ExperimentOpts,
) -> freedom_faas::Result<PerfTable> {
    ground_truth(kind, &kind.default_input(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let o = ExperimentOpts::default();
        assert_eq!(o.gt_reps, 5);
        assert_eq!(o.opt_repeats, 10);
        assert_eq!(o.budget, 20);
    }

    #[test]
    fn fast_mode_is_cheaper() {
        let f = ExperimentOpts::fast();
        let d = ExperimentOpts::default();
        assert!(f.gt_reps < d.gt_reps);
        assert!(f.opt_repeats < d.opt_repeats);
        assert!(f.budget < d.budget);
    }

    #[test]
    fn repeat_seeds_are_distinct() {
        let o = ExperimentOpts::default();
        assert_ne!(o.repeat_seed(0), o.repeat_seed(1));
        assert_ne!(o.repeat_seed(0), o.seed);
    }

    #[test]
    fn ground_truth_covers_the_space() {
        let opts = ExperimentOpts::fast();
        let t = ground_truth_default(FunctionKind::S3, &opts).unwrap();
        assert_eq!(t.points().len(), 288);
    }
}

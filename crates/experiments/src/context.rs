//! Shared experiment configuration, ground-truth collection, and the
//! scoped-thread fan-out every experiment kernel uses for its
//! `opt_repeats × functions × objectives` loops.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use freedom_faas::{collect_ground_truth, PerfTable};
use freedom_optimizer::SearchSpace;
use freedom_workloads::{FunctionKind, InputData};

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOpts {
    /// Repetitions per configuration in ground-truth sweeps (paper: ≥5).
    pub gt_reps: usize,
    /// Independent repetitions of each optimization process (paper: 10).
    pub opt_repeats: usize,
    /// Trial budget per optimization (paper: 20).
    pub budget: usize,
    /// Base seed; repetition `i` uses `seed + i`.
    pub seed: u64,
    /// Worker threads for [`par_map`]/[`par_repeats`]: 0 = one per core,
    /// 1 = fully sequential (results are bit-identical either way).
    pub threads: usize,
    /// Full hyperparameter-search cadence of the BO loops' GP surrogate
    /// (`BoConfig::surrogate_refit_every`); 1 reproduces the naive
    /// from-scratch refit at every step. Honored by every experiment that
    /// constructs its own `BoConfig` or `Autotuner`; the interface-driven
    /// kernels (fig14's hierarchical interface) use the default cadence.
    pub surrogate_refit_every: usize,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        Self {
            gt_reps: 5,
            opt_repeats: 10,
            budget: 20,
            seed: 42,
            threads: 0,
            surrogate_refit_every: 4,
        }
    }
}

impl ExperimentOpts {
    /// Reduced settings for benches and smoke tests: the same code paths
    /// at a fraction of the repetitions.
    pub fn fast() -> Self {
        Self {
            gt_reps: 2,
            opt_repeats: 2,
            budget: 12,
            seed: 42,
            threads: 0,
            surrogate_refit_every: 4,
        }
    }

    /// This configuration with an explicit worker-thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }

    /// The effective worker count: the configured `threads`, or
    /// `FREEDOM_THREADS` from the environment, or one per core.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("FREEDOM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Seed for optimization repetition `i`.
    pub fn repeat_seed(&self, i: usize) -> u64 {
        self.seed.wrapping_add(1 + i as u64)
    }

    /// Parses experiment options from CLI arguments.
    ///
    /// Supported flags: `--fast` (reduced settings), `--seed N`,
    /// `--gt-reps N`, `--repeats N`, `--budget N`, `--threads N`
    /// (0 = one per core, 1 = sequential), `--refit-every N` (GP full
    /// refit cadence; 1 = from-scratch every step). Unknown flags are
    /// ignored so binaries can add their own.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = if args.iter().any(|a| a == "--fast") {
            Self::fast()
        } else {
            Self::default()
        };
        let value_of = |flag: &str| -> Option<u64> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        if let Some(v) = value_of("--seed") {
            opts.seed = v;
        }
        if let Some(v) = value_of("--gt-reps") {
            opts.gt_reps = v as usize;
        }
        if let Some(v) = value_of("--repeats") {
            opts.opt_repeats = v as usize;
        }
        if let Some(v) = value_of("--budget") {
            opts.budget = (v as usize).max(4);
        }
        if let Some(v) = value_of("--threads") {
            opts.threads = v as usize;
        }
        if let Some(v) = value_of("--refit-every") {
            opts.surrogate_refit_every = (v as usize).max(1);
        }
        opts
    }
}

/// Runs `f(i)` for every `i in 0..n`, fanned out over `threads` workers,
/// and returns the results in index order.
///
/// The contract that makes the parallel experiment paths trustworthy:
/// each index is processed by exactly one worker with no shared mutable
/// state, and results are stored by index, so the output is **bit
/// identical** to the sequential `(0..n).map(f).collect()` regardless of
/// thread count or scheduling. Experiments achieve determinism by giving
/// each index its own seed ([`ExperimentOpts::repeat_seed`]).
///
/// Panics in `f` propagate (the scope joins all workers first).
///
/// Experiments nest these fan-outs (functions × inputs × repetitions);
/// a process-wide live-worker budget of 2× the core count keeps nested
/// levels from multiplying into hundreds of OS threads — once the budget
/// is spent, inner levels simply run sequentially inside their worker,
/// which changes scheduling but never results.
pub fn par_run<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);
    // Release reserved budget even if a worker panics out of the scope.
    struct Release(usize);
    impl Drop for Release {
        fn drop(&mut self) {
            LIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
    let budget = 2 * std::thread::available_parallelism().map_or(1, |c| c.get());
    // Reserve atomically (fetch_add first, clamp on the prior value) so
    // concurrent top-level calls cannot each claim the full budget.
    let desired = threads.max(1).min(n.max(1));
    let prior = LIVE_WORKERS.fetch_add(desired, Ordering::Relaxed);
    let allowed = desired.min(budget.saturating_sub(prior).max(1));
    if allowed < desired {
        LIVE_WORKERS.fetch_sub(desired - allowed, Ordering::Relaxed);
    }
    let _release = Release(allowed);
    let threads = allowed;
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

/// Fans the `opts.opt_repeats` optimization repetitions across cores;
/// repetition `i` runs `f(i)` (seed it with [`ExperimentOpts::repeat_seed`]).
pub fn par_repeats<T, F>(opts: &ExperimentOpts, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_run(opts.opt_repeats, opts.effective_threads(), f)
}

/// Maps `f` over `items` in parallel, preserving order (used to fan out
/// over functions and objectives).
pub fn par_map<I, T, F>(opts: &ExperimentOpts, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_run(items.len(), opts.effective_threads(), |i| f(&items[i]))
}

/// Collects the full Table 1 ground truth for one function and input.
pub fn ground_truth(
    kind: FunctionKind,
    input: &InputData,
    opts: &ExperimentOpts,
) -> freedom_faas::Result<PerfTable> {
    collect_ground_truth(
        kind,
        input,
        SearchSpace::table1().configs(),
        opts.gt_reps,
        opts.seed,
    )
}

/// Ground truth on the function's default input.
pub fn ground_truth_default(
    kind: FunctionKind,
    opts: &ExperimentOpts,
) -> freedom_faas::Result<PerfTable> {
    ground_truth(kind, &kind.default_input(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let o = ExperimentOpts::default();
        assert_eq!(o.gt_reps, 5);
        assert_eq!(o.opt_repeats, 10);
        assert_eq!(o.budget, 20);
    }

    #[test]
    fn fast_mode_is_cheaper() {
        let f = ExperimentOpts::fast();
        let d = ExperimentOpts::default();
        assert!(f.gt_reps < d.gt_reps);
        assert!(f.opt_repeats < d.opt_repeats);
        assert!(f.budget < d.budget);
    }

    #[test]
    fn repeat_seeds_are_distinct() {
        let o = ExperimentOpts::default();
        assert_ne!(o.repeat_seed(0), o.repeat_seed(1));
        assert_ne!(o.repeat_seed(0), o.seed);
    }

    #[test]
    fn ground_truth_covers_the_space() {
        let opts = ExperimentOpts::fast();
        let t = ground_truth_default(FunctionKind::S3, &opts).unwrap();
        assert_eq!(t.points().len(), 288);
    }

    #[test]
    fn par_run_matches_sequential_in_order() {
        let f = |i: usize| (i * 31) % 17;
        let seq: Vec<usize> = (0..100).map(f).collect();
        for threads in [1, 2, 8, 64] {
            assert_eq!(par_run(100, threads, f), seq, "threads = {threads}");
        }
        assert!(par_run(0, 4, f).is_empty());
    }

    #[test]
    fn par_helpers_respect_thread_knobs() {
        let opts = ExperimentOpts::fast().with_threads(3);
        assert_eq!(opts.effective_threads(), 3);
        let reps: Vec<u64> = par_repeats(&opts, |i| opts.repeat_seed(i));
        assert_eq!(reps.len(), opts.opt_repeats);
        assert_eq!(reps[0], opts.repeat_seed(0));
        let doubled = par_map(&opts, &[1u32, 2, 3, 4], |v| v * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_run_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            par_run(8, 4, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}

//! Figure 1: execution time and cost of every function across the whole
//! configuration space, normalized to each function's best configuration.
//!
//! Paper headline: the worst configuration is up to 14.9× slower and 5.6×
//! more expensive than the best one.

use freedom_linalg::stats::{self, BoxplotSummary};
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, ExperimentOpts};
use crate::report::{fmt_box, fmt_f, TextTable};

/// One function's normalized spread.
#[derive(Debug, Clone)]
pub struct FunctionSpread {
    /// Function measured.
    pub function: FunctionKind,
    /// Boxplot of normalized execution time (best = 1.0).
    pub time_box: BoxplotSummary,
    /// Boxplot of normalized execution cost (best = 1.0).
    pub cost_box: BoxplotSummary,
    /// Worst-case normalized execution time.
    pub worst_time: f64,
    /// Worst-case normalized execution cost.
    pub worst_cost: f64,
    /// Number of configurations that failed (OOM).
    pub failed_configs: usize,
}

/// The full Figure 1 dataset.
#[derive(Debug, Clone)]
pub struct Fig01Result {
    /// Per-function spreads, in the paper's function order.
    pub spreads: Vec<FunctionSpread>,
}

impl Fig01Result {
    /// The largest normalized execution time anywhere (paper: 14.9×).
    pub fn max_time_ratio(&self) -> f64 {
        self.spreads
            .iter()
            .map(|s| s.worst_time)
            .fold(0.0, f64::max)
    }

    /// The largest normalized execution cost anywhere (paper: 5.6×).
    pub fn max_cost_ratio(&self) -> f64 {
        self.spreads
            .iter()
            .map(|s| s.worst_cost)
            .fold(0.0, f64::max)
    }

    /// Renders the paper-style summary table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "function",
            "norm. exec time (box)",
            "worst ET",
            "norm. exec cost (box)",
            "worst EC",
            "failed cfgs",
        ]);
        for s in &self.spreads {
            t.row(vec![
                s.function.to_string(),
                fmt_box(&s.time_box, 2),
                format!("{}x", fmt_f(s.worst_time, 1)),
                fmt_box(&s.cost_box, 2),
                format!("{}x", fmt_f(s.worst_cost, 1)),
                s.failed_configs.to_string(),
            ]);
        }
        format!(
            "Figure 1 — normalized ET/EC across the {}-point space\n{}\nmax ET ratio {}x (paper: 14.9x) | max EC ratio {}x (paper: 5.6x)\n",
            288,
            t.render(),
            fmt_f(self.max_time_ratio(), 1),
            fmt_f(self.max_cost_ratio(), 1),
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec![
            "function",
            "et_q1",
            "et_median",
            "et_q3",
            "et_worst",
            "ec_q1",
            "ec_median",
            "ec_q3",
            "ec_worst",
            "failed",
        ]);
        for s in &self.spreads {
            t.row(vec![
                s.function.to_string(),
                s.time_box.q1.to_string(),
                s.time_box.median.to_string(),
                s.time_box.q3.to_string(),
                s.worst_time.to_string(),
                s.cost_box.q1.to_string(),
                s.cost_box.median.to_string(),
                s.cost_box.q3.to_string(),
                s.worst_cost.to_string(),
                s.failed_configs.to_string(),
            ]);
        }
        t.write_csv("fig01_config_spread.csv")
    }
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom_faas::Result<Fig01Result> {
    let spreads = par_map(opts, &FunctionKind::ALL, |&kind| {
        let table = ground_truth_default(kind, opts)?;
        let times = table.normalized_times();
        let costs = table.normalized_costs();
        let time_box = stats::boxplot(&times).expect("feasible configs exist");
        let cost_box = stats::boxplot(&costs).expect("feasible configs exist");
        Ok(FunctionSpread {
            function: kind,
            worst_time: times.iter().copied().fold(0.0, f64::max),
            worst_cost: costs.iter().copied().fold(0.0, f64::max),
            failed_configs: table.points().len() - table.feasible().count(),
            time_box,
            cost_box,
        })
    })
    .into_iter()
    .collect::<freedom_faas::Result<Vec<_>>>()?;
    Ok(Fig01Result { spreads })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_shapes_match_the_paper() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.spreads.len(), 6);
        // Worst-case ET is an order of magnitude (paper: up to 14.9x).
        assert!(
            result.max_time_ratio() > 8.0,
            "max ET ratio {}",
            result.max_time_ratio()
        );
        // Worst-case EC several-fold (paper: up to 5.6x).
        assert!(
            result.max_cost_ratio() > 3.0,
            "max EC ratio {}",
            result.max_cost_ratio()
        );
        // transcode has the largest time spread (it is the most parallel).
        let transcode = &result.spreads[0];
        assert!(transcode.worst_time >= result.max_time_ratio() * 0.99);
        // Render sanity.
        let text = result.render();
        assert!(text.contains("transcode"));
        assert!(text.contains("max ET ratio"));
    }
}

//! Retry-storm sweep: what invocation-level failure semantics cost and
//! buy when functions themselves fail, not just the market under them.
//!
//! Every cell replays one heavy-tail trace over the tight spot market
//! under one transient-fault preset and one retry policy:
//!
//! - fault presets escalate from `calm` (no transients) through `flaky`
//!   (occasional crash-on-start, mid-flight aborts, stragglers) to
//!   `storm` (heavy transients plus 6x stragglers);
//! - policies escalate from `no_retry` (failures dead-letter on the
//!   spot) through `retry` (seeded exponential backoff under a
//!   per-family token budget) and `hedge` (plus hedged re-issue against
//!   stragglers) to `full` (plus retry-budget brownout with
//!   hysteresis).
//!
//! Reported per cell: goodput (invocations that actually completed),
//! the retry ledger (retries, hedge wins, dead letters, brownout
//! sheds), and the cost of reliability — how much the re-executions
//! inflate spend over the `no_retry` cell of the same preset.
//!
//! On top of the sweep, [`run`] replays the stormiest cell under two
//! fault seeds through a mid-storm kill/resume cycle and records
//! whether the resumed report stayed bit-identical to the
//! uninterrupted one — the chaos check CI pins.

use freedom::fleet::{
    BrownoutConfig, ControlConfig, ControllerConfig, FaultPlan, FleetConfig, FleetReport,
    FleetSimulator, PlacementStrategy, RetryPolicy, StreamTrace, TraceSource,
};

use crate::context::{par_map, ExperimentOpts};
use crate::fleet_simulation::{fleet_scale, market_config, market_tightness, tuned_base_plans};
use crate::report::{fmt_f, TextTable};

/// Replay window used by the windowed engine throughout the sweep.
const WINDOW_SECS: f64 = 60.0;

/// Controller tick cadence: brownout pressure is measured per control
/// epoch, so the storm needs epochs to toggle in.
const CADENCE_SECS: f64 = 20.0;

/// Snapshot cadence of the kill/resume chaos check.
const SNAPSHOT_SECS: f64 = 30.0;

/// One transient-fault preset of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct TransientPreset {
    /// Row label (`calm`, `flaky`, `storm`).
    pub label: &'static str,
    /// The injected plan (transients only; the market itself is healthy
    /// so the ledger isolates invocation-level failures).
    pub plan: FaultPlan,
}

/// The escalation ladder, calmest first.
pub fn transient_presets() -> [TransientPreset; 3] {
    [
        TransientPreset {
            label: "calm",
            plan: FaultPlan::NONE,
        },
        TransientPreset {
            label: "flaky",
            plan: FaultPlan {
                seed: 29,
                crash_prob: 0.04,
                abort_prob: 0.03,
                straggler_prob: 0.05,
                straggler_factor: 4.0,
                ..FaultPlan::NONE
            },
        },
        TransientPreset {
            label: "storm",
            plan: FaultPlan {
                seed: 29,
                crash_prob: 0.12,
                abort_prob: 0.10,
                straggler_prob: 0.15,
                straggler_factor: 6.0,
                ..FaultPlan::NONE
            },
        },
    ]
}

/// One retry-policy preset of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct PolicyPreset {
    /// Column label (`no_retry`, `retry`, `hedge`, `full`).
    pub label: &'static str,
    /// The policy.
    pub policy: RetryPolicy,
}

/// The policy ladder, barest first.
pub fn policy_presets() -> [PolicyPreset; 4] {
    let retry = RetryPolicy {
        max_attempts: 4,
        backoff_base_secs: 0.5,
        backoff_cap_secs: 8.0,
        budget_per_sec: 2.0,
        budget_burst: 8.0,
        ..RetryPolicy::DEFAULT
    };
    [
        PolicyPreset {
            label: "no_retry",
            policy: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::DEFAULT
            },
        },
        PolicyPreset {
            label: "retry",
            policy: retry,
        },
        PolicyPreset {
            label: "hedge",
            policy: RetryPolicy {
                hedge_delay_secs: 1.0,
                ..retry
            },
        },
        PolicyPreset {
            label: "full",
            policy: RetryPolicy {
                hedge_delay_secs: 1.0,
                brownout: Some(BrownoutConfig {
                    enter_pressure: 0.15,
                    exit_pressure: 0.05,
                    utilization_ceiling: 0.8,
                }),
                ..retry
            },
        },
    ]
}

/// One sweep data point.
#[derive(Debug, Clone)]
pub struct StormRow {
    /// Transient preset label.
    pub faults: &'static str,
    /// Retry-policy preset label.
    pub policy: &'static str,
    /// Cost of the `no_retry` cell under the same preset.
    pub no_retry_cost_usd: f64,
    /// The idle-aware replay.
    pub report: FleetReport,
}

impl StormRow {
    /// Share of invocations that actually completed: a dead letter is
    /// the one terminal class whose work never ran to completion.
    pub fn goodput(&self) -> f64 {
        if self.report.invocations == 0 {
            return 1.0;
        }
        1.0 - self.report.dead_lettered as f64 / self.report.invocations as f64
    }

    /// Cost of reliability: spend inflation over the `no_retry` cell of
    /// the same fault preset (0.0 for that cell itself).
    pub fn cost_of_reliability(&self) -> f64 {
        self.report.total_cost_usd / self.no_retry_cost_usd - 1.0
    }
}

/// One kill/resume chaos check of the stormiest cell.
#[derive(Debug, Clone)]
pub struct ResumeCheck {
    /// Fault seed the storm replayed under.
    pub fault_seed: u64,
    /// Snapshot epoch the replay was killed at.
    pub killed_at_epoch: u64,
    /// Whether the resumed report matched the uninterrupted one bit
    /// for bit.
    pub bit_identical: bool,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct RetryStormResult {
    /// Functions in the simulated fleet.
    pub n_functions: usize,
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Rows, grouped by fault preset (calmest first), then policy.
    pub rows: Vec<StormRow>,
    /// Mid-storm kill/resume checks, one per fault seed.
    pub resume_checks: Vec<ResumeCheck>,
}

impl RetryStormResult {
    /// The row of one sweep cell.
    pub fn cell(&self, faults: &str, policy: &str) -> Option<&StormRow> {
        self.rows
            .iter()
            .find(|r| r.faults == faults && r.policy == policy)
    }

    /// Whether every kill/resume check reproduced the uninterrupted
    /// report bit for bit.
    pub fn resume_bit_identical(&self) -> bool {
        !self.resume_checks.is_empty() && self.resume_checks.iter().all(|c| c.bit_identical)
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "faults",
            "policy",
            "goodput",
            "cost of rel.",
            "retried",
            "hedge wins",
            "dead letters",
            "shed",
            "p95 inflation",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.faults.to_string(),
                r.policy.to_string(),
                format!("{}%", fmt_f(r.goodput() * 100.0, 2)),
                format!("{}%", fmt_f(r.cost_of_reliability() * 100.0, 1)),
                r.report.retried.to_string(),
                r.report.hedge_wins.to_string(),
                r.report.dead_lettered.to_string(),
                r.report.shed_retries.to_string(),
                fmt_f(r.report.p95_latency_inflation, 3),
            ]);
        }
        let checks = self
            .resume_checks
            .iter()
            .map(|c| {
                format!(
                    "seed {} killed at epoch {}: {}",
                    c.fault_seed,
                    c.killed_at_epoch,
                    if c.bit_identical {
                        "bit-identical"
                    } else {
                        "DIVERGED"
                    }
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        format!(
            "Fleet retry storm (transient faults x retry policies): \
             {} functions, {}s per trace\n{}\nkill/resume mid-storm: {}",
            self.n_functions,
            fmt_f(self.duration_secs, 0),
            t.render(),
            checks
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec![
            "faults",
            "policy",
            "invocations",
            "goodput",
            "cost_usd",
            "no_retry_cost_usd",
            "cost_of_reliability",
            "spot_share",
            "retried",
            "hedge_wins",
            "dead_lettered",
            "shed_retries",
            "rejected",
            "slo_violations",
            "p95_latency_inflation",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.faults.to_string(),
                r.policy.to_string(),
                r.report.invocations.to_string(),
                r.goodput().to_string(),
                r.report.total_cost_usd.to_string(),
                r.no_retry_cost_usd.to_string(),
                r.cost_of_reliability().to_string(),
                r.report.spot_share().to_string(),
                r.report.retried.to_string(),
                r.report.hedge_wins.to_string(),
                r.report.dead_lettered.to_string(),
                r.report.shed_retries.to_string(),
                r.report.rejected.to_string(),
                r.report.slo_violations.to_string(),
                r.report.p95_latency_inflation.to_string(),
            ]);
        }
        t.write_csv("fleet_retry_storm.csv")
    }
}

/// Runs the sweep: every transient preset × retry policy over one
/// heavy-tail trace on the tight market, replayed windowed across
/// `opts.effective_threads()` workers, then the mid-storm kill/resume
/// chaos check under two fault seeds.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<RetryStormResult> {
    let (base_plans, planner) = tuned_base_plans(opts)?;
    let (duration_secs, n_functions) = fleet_scale(opts);
    // Backoff ladders and brownout hysteresis need control epochs to
    // play out in: stretch the `--fast` trace like the other sweeps.
    let duration_secs = if opts.opt_repeats <= 2 {
        duration_secs * 5.0
    } else {
        duration_secs
    };
    let threads = opts.effective_threads();
    let plans = (0..n_functions)
        .map(|i| base_plans[i % base_plans.len()].clone())
        .collect();
    let sim = FleetSimulator::new(plans)?;

    let trace = StreamTrace::generate_sharded(
        TraceSource::HeavyTail {
            mean_rps: 0.5,
            alpha: 1.5,
        },
        n_functions,
        duration_secs,
        opts.seed,
        threads,
    )?;

    // The tight preset: scarce enough that retries compete with first
    // attempts for capacity instead of vanishing into headroom.
    let tight = market_tightness()[2];
    let market = market_config(&tight, planner.admission_policy());
    let config_of = |plan: FaultPlan, policy: RetryPolicy| FleetConfig {
        market,
        control: ControlConfig {
            cadence_secs: CADENCE_SECS,
            controller: ControllerConfig::Static,
        },
        faults: plan,
        retry: policy,
        ..FleetConfig::default()
    };
    let replay = |config: &FleetConfig| {
        if threads <= 1 {
            sim.run_stream(&trace, PlacementStrategy::IdleAware, config)
        } else {
            sim.run_stream_windowed(
                &trace,
                PlacementStrategy::IdleAware,
                config,
                threads,
                WINDOW_SECS,
            )
        }
    };

    let faults = transient_presets();
    let policies = policy_presets();
    let points: Vec<(usize, usize)> = (0..faults.len())
        .flat_map(|f| (0..policies.len()).map(move |p| (f, p)))
        .collect();
    let reports = par_map(opts, &points, |&(f, p)| {
        replay(&config_of(faults[f].plan, policies[p].policy))
    })
    .into_iter()
    .collect::<freedom::Result<Vec<FleetReport>>>()?;
    let rows = points
        .iter()
        .zip(reports)
        .map(|(&(f, p), report)| StormRow {
            faults: faults[f].label,
            policy: policies[p].label,
            // no_retry is column 0 of each preset's row group.
            no_retry_cost_usd: 0.0,
            report,
        })
        .collect::<Vec<_>>();
    let rows = rows
        .iter()
        .map(|r| StormRow {
            no_retry_cost_usd: rows
                .iter()
                .find(|b| b.faults == r.faults && b.policy == "no_retry")
                .map(|b| b.report.total_cost_usd)
                .unwrap_or(r.report.total_cost_usd),
            ..r.clone()
        })
        .collect();

    // The chaos check: kill the stormiest cell mid-storm at a middle
    // snapshot boundary, resume, and compare bit for bit — once per
    // fault seed so a seed-dependent heap or budget bug still trips it.
    let storm = faults[2];
    let full = policies[3];
    let mut resume_checks = Vec::new();
    for seed_bump in [0, 2] {
        let config = config_of(
            FaultPlan {
                seed: storm.plan.seed + seed_bump,
                ..storm.plan
            },
            full.policy,
        );
        let reference = sim.run_stream(&trace, PlacementStrategy::IdleAware, &config)?;
        let mut epochs = Vec::new();
        let uninterrupted = sim.run_stream_resumable(
            &trace,
            PlacementStrategy::IdleAware,
            &config,
            SNAPSHOT_SECS,
            None,
            |s| {
                epochs.push(s.epoch());
                Ok(true)
            },
        )?;
        let uninterrupted = uninterrupted.ok_or_else(|| {
            freedom::FreedomError::InvalidArgument("uninterrupted run was aborted".into())
        })?;
        let kill_at = epochs[epochs.len() / 2];
        let mut snap = None;
        let crashed = sim.run_stream_resumable(
            &trace,
            PlacementStrategy::IdleAware,
            &config,
            SNAPSHOT_SECS,
            None,
            |s| {
                snap = Some(s.clone());
                Ok(s.epoch() < kill_at)
            },
        )?;
        let snap = snap.ok_or_else(|| {
            freedom::FreedomError::InvalidArgument("no snapshot reached the kill point".into())
        })?;
        let resumed = sim.run_stream_resumable(
            &trace,
            PlacementStrategy::IdleAware,
            &config,
            SNAPSHOT_SECS,
            Some(&snap),
            |_| Ok(true),
        )?;
        let resumed = resumed.ok_or_else(|| {
            freedom::FreedomError::InvalidArgument("resumed run was aborted".into())
        })?;
        resume_checks.push(ResumeCheck {
            fault_seed: storm.plan.seed + seed_bump,
            killed_at_epoch: kill_at,
            bit_identical: crashed.is_none()
                && format!("{reference:?}") == format!("{uninterrupted:?}")
                && format!("{reference:?}") == format!("{resumed:?}"),
        });
    }

    Ok(RetryStormResult {
        n_functions,
        duration_secs,
        rows,
        resume_checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_buy_goodput_and_cost_real_money() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.rows.len(), 3 * 4);
        for r in &result.rows {
            assert!(r.report.invocations > 0);
            assert_eq!(
                r.report.spot_admitted
                    + r.report.drained
                    + r.report.migrated
                    + r.report.spot_demoted
                    + r.report.rejected
                    + r.report.dead_lettered,
                r.report.invocations + r.report.retried,
                "{}/{}: retry accounting leaked",
                r.faults,
                r.policy
            );
            if r.faults == "calm" {
                assert_eq!(r.report.retried, 0, "calm cells must not retry");
                assert_eq!(r.report.dead_lettered, 0);
            }
        }
        // The retry machinery must actually fire under transients.
        let total = |f: fn(&StormRow) -> usize| result.rows.iter().map(f).sum::<usize>();
        assert!(total(|r| r.report.retried) > 0, "nothing retried");
        assert!(
            total(|r| r.report.dead_lettered) > 0,
            "nothing dead-lettered"
        );
        // Retrying recovers goodput the bare policy loses to transients.
        let bare = result.cell("storm", "no_retry").unwrap();
        let retry = result.cell("storm", "retry").unwrap();
        assert!(
            retry.goodput() > bare.goodput(),
            "retries must lift goodput: {} vs {}",
            retry.goodput(),
            bare.goodput()
        );
        // The mid-storm kill/resume cycle must reproduce the report.
        assert_eq!(result.resume_checks.len(), 2);
        assert!(
            result.resume_bit_identical(),
            "kill/resume diverged: {:?}",
            result.resume_checks
        );
        assert!(result.render().contains("retry storm"));
    }
}

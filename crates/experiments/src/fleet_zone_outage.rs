//! Failure-domain sweep: what multi-zone supply and preemption notices
//! buy the provider when zones actually fail.
//!
//! Every cell replays one heavy-tail trace over a **three-zone** spot
//! market with preemption notices under one fault plan and one
//! controller:
//!
//! - fault plans escalate from `calm` (only the market's own supply
//!   volatility) through `outages` (whole-zone failures) to `stormy`
//!   (outages plus correlated supply-shock bursts plus dropped notice
//!   deliveries);
//! - controllers are the open-loop `static` baseline, the `pid`
//!   admission-ceiling feedback loop, and the surrogate `right_sizer` —
//!   the same presets the control-loop sweep scores on a healthy market.
//!
//! Reported per cell: provider savings vs. the best-config-only
//! baseline, spot share, and the failure-domain ledger — notices
//! delivered, completions drained under notice, cross-zone migrations,
//! and force-demotions — so the table shows how much displaced work the
//! notice lead and the failover path rescue as faults escalate.

use freedom::fleet::{
    AdmissionPolicy, ControlConfig, ControllerConfig, FaultPlan, FleetConfig, FleetReport,
    FleetSimulator, PidConfig, PlacementStrategy, ReplayConfig, ReplayStats, RightSizerConfig,
    StreamTrace, Telemetry, TraceSource, ZoneConfig,
};

use crate::context::{par_map, ExperimentOpts};
use crate::fleet_simulation::{fleet_scale, market_config, market_tightness, tuned_base_plans};
use crate::report::{fmt_f, TextTable};

/// Replay window used by the windowed engine throughout the sweep.
const WINDOW_SECS: f64 = 60.0;

/// Controller tick cadence (matches the control-loop sweep).
const CADENCE_SECS: f64 = 20.0;

/// The failure-domain layout every cell replays: three zones, a notice
/// lead that fits several mean executions, strong cross-zone shock
/// correlation, and migrations re-billed at half of list price.
pub fn zone_layout() -> ZoneConfig {
    ZoneConfig {
        n_zones: 3,
        notice_secs: 8.0,
        shock: 0.6,
        migration_rebill: 0.5,
    }
}

/// One fault preset of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultPreset {
    /// Row label (`calm`, `outages`, `stormy`).
    pub label: &'static str,
    /// The injected plan.
    pub plan: FaultPlan,
}

/// The escalation ladder, calmest first.
pub fn fault_presets() -> [FaultPreset; 3] {
    [
        FaultPreset {
            label: "calm",
            plan: FaultPlan::NONE,
        },
        FaultPreset {
            label: "outages",
            plan: FaultPlan {
                seed: 29,
                outage_rate_per_hour: 12.0,
                mean_outage_secs: 45.0,
                notice_drop_fraction: 0.0,
                burst_rate_per_hour: 0.0,
                mean_burst_secs: 1.0,
                burst_severity: 0.0,
                ..FaultPlan::NONE
            },
        },
        FaultPreset {
            label: "stormy",
            plan: FaultPlan {
                seed: 29,
                outage_rate_per_hour: 12.0,
                mean_outage_secs: 45.0,
                notice_drop_fraction: 0.3,
                burst_rate_per_hour: 6.0,
                mean_burst_secs: 30.0,
                burst_severity: 0.6,
                ..FaultPlan::NONE
            },
        },
    ]
}

/// One sweep data point.
///
/// `Debug` deliberately covers only the *result* fields: `stats` and
/// `telemetry` are replay-engine diagnostics (effort counters differ
/// between the sequential and windowed engines, and the digest carries
/// sampled wall-clock timings), so they are excluded from the
/// bit-equality surface the determinism tests compare.
#[derive(Clone)]
pub struct OutageRow {
    /// Fault preset label.
    pub faults: &'static str,
    /// Controller preset label.
    pub controller: &'static str,
    /// Best-config-only baseline cost under the same faults.
    pub baseline_cost_usd: f64,
    /// The idle-aware replay over the faulted multi-zone market.
    pub report: FleetReport,
    /// Replay-engine effort and peak-memory stats of the replay
    /// (peak in-flight, ladder anchors, fallback windows).
    pub stats: ReplayStats,
    /// One-line telemetry counter digest of the replay
    /// ([`Telemetry::brief`]).
    pub telemetry: String,
}

impl std::fmt::Debug for OutageRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutageRow")
            .field("faults", &self.faults)
            .field("controller", &self.controller)
            .field("baseline_cost_usd", &self.baseline_cost_usd)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl OutageRow {
    /// Provider savings vs. the best-config-only baseline.
    pub fn savings(&self) -> f64 {
        1.0 - self.report.total_cost_usd / self.baseline_cost_usd
    }

    /// In-flight placements displaced by supply drops, however resolved.
    pub fn displaced(&self) -> usize {
        self.report.drained + self.report.migrated + self.report.spot_demoted
    }

    /// Share of displaced work rescued by the notice lead or the
    /// cross-zone failover instead of force-demotion (1.0 when nothing
    /// was displaced).
    pub fn rescue_rate(&self) -> f64 {
        if self.displaced() == 0 {
            return 1.0;
        }
        (self.report.drained + self.report.migrated) as f64 / self.displaced() as f64
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct ZoneOutageResult {
    /// Functions in the simulated fleet.
    pub n_functions: usize,
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Rows, grouped by fault preset (calmest first), then controller.
    pub rows: Vec<OutageRow>,
}

impl ZoneOutageResult {
    /// The row of one sweep cell.
    pub fn cell(&self, faults: &str, controller: &str) -> Option<&OutageRow> {
        self.rows
            .iter()
            .find(|r| r.faults == faults && r.controller == controller)
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "faults",
            "controller",
            "savings",
            "spot share",
            "notified",
            "drained",
            "migrated",
            "demoted",
            "rescue",
            "rejected",
            "violations",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.faults.to_string(),
                r.controller.to_string(),
                format!("{}%", fmt_f(r.savings() * 100.0, 1)),
                format!("{}%", fmt_f(r.report.spot_share() * 100.0, 1)),
                r.report.notified.to_string(),
                r.report.drained.to_string(),
                r.report.migrated.to_string(),
                r.report.spot_demoted.to_string(),
                format!("{}%", fmt_f(r.rescue_rate() * 100.0, 1)),
                r.report.rejected.to_string(),
                r.report.slo_violations.to_string(),
            ]);
        }
        format!(
            "Fleet zone outages (3 zones, {}s notices, faults injected): \
             {} functions, {}s per trace\n{}",
            fmt_f(zone_layout().notice_secs, 0),
            self.n_functions,
            fmt_f(self.duration_secs, 0),
            t.render()
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec![
            "faults",
            "controller",
            "invocations",
            "baseline_cost_usd",
            "cost_usd",
            "savings",
            "spot_share",
            "spot_admitted",
            "notified",
            "drained",
            "migrated",
            "spot_demoted",
            "rescue_rate",
            "rejected",
            "slo_violations",
            "p95_latency_inflation",
            "peak_inflight",
            "peak_resident_events",
            "ladder_anchors",
            "fallback_windows",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.faults.to_string(),
                r.controller.to_string(),
                r.report.invocations.to_string(),
                r.baseline_cost_usd.to_string(),
                r.report.total_cost_usd.to_string(),
                r.savings().to_string(),
                r.report.spot_share().to_string(),
                r.report.spot_admitted.to_string(),
                r.report.notified.to_string(),
                r.report.drained.to_string(),
                r.report.migrated.to_string(),
                r.report.spot_demoted.to_string(),
                r.rescue_rate().to_string(),
                r.report.rejected.to_string(),
                r.report.slo_violations.to_string(),
                r.report.p95_latency_inflation.to_string(),
                r.stats.peak_inflight.to_string(),
                r.stats.peak_resident_events().to_string(),
                r.stats.ladder_anchors.to_string(),
                r.stats.fallback_windows.to_string(),
            ]);
        }
        t.write_csv("fleet_zone_outage.csv")
    }
}

/// Runs the sweep: every fault preset × controller over one heavy-tail
/// trace on the tight three-zone market, replayed windowed across
/// `opts.effective_threads()` workers.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<ZoneOutageResult> {
    let (base_plans, planner) = tuned_base_plans(opts)?;
    let (duration_secs, n_functions) = fleet_scale(opts);
    // Like the control-loop sweep, feedback (and outages) need epochs to
    // land in: stretch the `--fast` trace the same way.
    let duration_secs = if opts.opt_repeats <= 2 {
        duration_secs * 5.0
    } else {
        duration_secs
    };
    let threads = opts.effective_threads();
    let plans = (0..n_functions)
        .map(|i| base_plans[i % base_plans.len()].clone())
        .collect();
    let sim = FleetSimulator::new(plans)?;

    let trace = StreamTrace::generate_sharded(
        TraceSource::HeavyTail {
            mean_rps: 0.5,
            alpha: 1.5,
        },
        n_functions,
        duration_secs,
        opts.seed,
        threads,
    )?;

    // The tight preset: scarce and volatile, so zone failures displace
    // real work instead of disappearing into headroom.
    let tight = market_tightness()[2];
    let market = |admission| freedom::market::MarketConfig {
        zones: zone_layout(),
        ..market_config(&tight, admission)
    };
    let headroom = planner.admission_policy();
    let controllers: [(&'static str, ControllerConfig, AdmissionPolicy); 3] = [
        ("static", ControllerConfig::Static, headroom),
        (
            "pid",
            ControllerConfig::HeadroomPid(PidConfig::default()),
            AdmissionPolicy::Greedy,
        ),
        (
            "right_sizer",
            ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
            headroom,
        ),
    ];
    let faults = fault_presets();

    // Every cell replays with a live per-cell recorder: the stats and
    // counter digest ride along in the row while the report itself stays
    // bit-identical to the untraced replay (the determinism lattice pins
    // this).
    let replay = |strategy, config: &FleetConfig| {
        let mut tel = Telemetry::with_capacity(4096);
        let (report, stats) = if threads <= 1 {
            sim.run_stream_traced(&trace, strategy, config, &mut tel)?
        } else {
            sim.run_stream_windowed_traced(
                &trace,
                strategy,
                config,
                &ReplayConfig::default(),
                threads,
                WINDOW_SECS,
                &mut tel,
            )?
        };
        Ok::<_, freedom::FreedomError>((report, stats, tel.brief()))
    };

    // One best-config-only baseline per fault preset: the baseline never
    // touches the spot market, so faults and controllers cannot move it,
    // but replaying it per preset keeps every cell's comparison honest.
    let fault_idx: Vec<usize> = (0..faults.len()).collect();
    let baselines = par_map(opts, &fault_idx, |&f| {
        let config = FleetConfig {
            market: market(AdmissionPolicy::Greedy),
            faults: faults[f].plan,
            ..FleetConfig::default()
        };
        Ok(replay(PlacementStrategy::BestConfigOnly, &config)?
            .0
            .total_cost_usd)
    })
    .into_iter()
    .collect::<freedom::Result<Vec<f64>>>()?;

    let points: Vec<(usize, usize)> = (0..faults.len())
        .flat_map(|f| (0..controllers.len()).map(move |c| (f, c)))
        .collect();
    let rows = par_map(opts, &points, |&(f, c)| {
        let (label, controller, admission) = controllers[c];
        let config = FleetConfig {
            market: market(admission),
            control: ControlConfig {
                cadence_secs: CADENCE_SECS,
                controller,
            },
            faults: faults[f].plan,
            ..FleetConfig::default()
        };
        let (report, stats, telemetry) = replay(PlacementStrategy::IdleAware, &config)?;
        Ok(OutageRow {
            faults: faults[f].label,
            controller: label,
            baseline_cost_usd: baselines[f],
            report,
            stats,
            telemetry,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(ZoneOutageResult {
        n_functions,
        duration_secs,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_domain_rescues_displaced_work() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.rows.len(), 3 * 3);
        for r in &result.rows {
            assert!(r.report.invocations > 0);
            assert_eq!(
                r.report.spot_admitted
                    + r.report.drained
                    + r.report.migrated
                    + r.report.spot_demoted
                    + r.report.rejected,
                r.report.invocations,
                "{}/{}: accounting leaked",
                r.faults,
                r.controller
            );
            assert!(r.baseline_cost_usd > 0.0);
        }
        // The failure-domain machinery must actually fire somewhere:
        // notices delivered, completions drained, work migrated.
        let total = |f: fn(&OutageRow) -> usize| result.rows.iter().map(f).sum::<usize>();
        assert!(total(|r| r.report.notified) > 0, "no notices delivered");
        assert!(total(|r| r.report.drained) > 0, "nothing drained");
        assert!(total(|r| r.report.migrated) > 0, "nothing migrated");
        // Escalating faults displace more work on the open-loop row.
        let calm = result.cell("calm", "static").unwrap();
        let stormy = result.cell("stormy", "static").unwrap();
        assert!(
            stormy.displaced() >= calm.displaced(),
            "outages+bursts must not displace less: {} vs {}",
            stormy.displaced(),
            calm.displaced()
        );
        assert!(result.render().contains("zone outages"));
    }

    #[test]
    fn rescue_rate_is_total_on_zero_displacement() {
        use freedom::fleet::{SupplyProcess, TraceSource};

        // A steady full-supply market displaces nothing: the rate must
        // pin to 1.0, not divide by zero or report 0% rescued.
        let plans = crate::fleet_simulation::synthetic_plans(6, 4).unwrap();
        let sim = FleetSimulator::new(plans).unwrap();
        let config = FleetConfig {
            market: freedom::market::MarketConfig {
                supply: SupplyProcess {
                    step_secs: 10.0,
                    min_fraction: 1.0,
                    seed: 3,
                },
                ..freedom::market::MarketConfig::default()
            },
            ..FleetConfig::default()
        };
        let lazy = StreamTrace::generate(
            TraceSource::Poisson {
                rps_per_function: 0.5,
            },
            6,
            30.0,
            5,
        )
        .unwrap();
        let (report, stats) = sim
            .run_stream_with_stats(&lazy, PlacementStrategy::IdleAware, &config)
            .unwrap();
        assert_eq!(report.invocations, lazy.len());
        let mut row = OutageRow {
            faults: "calm",
            controller: "static",
            baseline_cost_usd: 1.0,
            report,
            stats,
            telemetry: String::new(),
        };
        assert_eq!(row.displaced(), 0, "{:?}", row.report);
        assert_eq!(row.rescue_rate(), 1.0);
        // With displacement, the rate is the rescued share.
        row.report.drained = 2;
        row.report.migrated = 1;
        row.report.spot_demoted = 1;
        assert_eq!(row.displaced(), 4);
        assert_eq!(row.rescue_rate(), 0.75);
    }
}

//! Figures 9 and 10: prediction error (MAPE) of each BO variant's model.
//!
//! Figure 9 scores predictions across every feasible configuration of the
//! space; Figure 10 scores the best predicted configuration of each
//! instance family (§5.5). Paper headline: GP has up to 16× (Fig. 9) and
//! 7× (Fig. 10) lower MAPE than the other variants.

use freedom_linalg::stats;
use freedom_optimizer::eval::{mape_over_space, mape_per_family_best};
use freedom_optimizer::{BayesianOptimizer, BoConfig, Objective, SearchSpace, TableEvaluator};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, par_repeats, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// Which MAPE scenario to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Figure 9: the whole feasible space.
    WholeSpace,
    /// Figure 10: per-family best predicted configurations.
    PerFamilyBest,
}

/// One (function, variant) cell: MAPE statistics over repetitions.
#[derive(Debug, Clone)]
pub struct MapeCell {
    /// Surrogate variant.
    pub variant: SurrogateKind,
    /// Mean MAPE over repetitions, in percent.
    pub mean: f64,
    /// 95% CI half-width.
    pub ci: f64,
}

/// One function's row.
#[derive(Debug, Clone)]
pub struct MapeRow {
    /// Function measured.
    pub function: FunctionKind,
    /// Cells in [`SurrogateKind::ALL`] order.
    pub cells: Vec<MapeCell>,
}

/// The full Figure 9/10 dataset (one panel per objective).
#[derive(Debug, Clone)]
pub struct MapeResult {
    /// Scenario measured.
    pub scenario: Scenario,
    /// Panel (a): execution time.
    pub time_panel: Vec<MapeRow>,
    /// Panel (b): execution cost.
    pub cost_panel: Vec<MapeRow>,
}

impl MapeResult {
    /// GP's advantage for a function in a panel: (worst other variant's
    /// MAPE) ÷ (GP's MAPE).
    pub fn gp_advantage(row: &MapeRow) -> f64 {
        let gp = row
            .cells
            .iter()
            .find(|c| c.variant == SurrogateKind::Gp)
            .map(|c| c.mean)
            .unwrap_or(f64::NAN);
        let worst = row
            .cells
            .iter()
            .filter(|c| c.variant != SurrogateKind::Gp)
            .map(|c| c.mean)
            .fold(0.0, f64::max);
        worst / gp
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        let figure = match self.scenario {
            Scenario::WholeSpace => "Figure 9 (whole space)",
            Scenario::PerFamilyBest => "Figure 10 (per-family best)",
        };
        let mut out = String::new();
        for (title, panel) in [
            ("(a) Execution time", &self.time_panel),
            ("(b) Execution cost", &self.cost_panel),
        ] {
            let mut headers = vec!["function".to_string()];
            headers.extend(SurrogateKind::ALL.iter().map(|k| k.to_string()));
            headers.push("GP advantage".to_string());
            let mut t = TextTable::new(headers);
            for r in panel {
                let mut row = vec![r.function.to_string()];
                for c in &r.cells {
                    row.push(format!("{}±{}", fmt_f(c.mean, 1), fmt_f(c.ci, 1)));
                }
                row.push(format!("{}x", fmt_f(Self::gp_advantage(r), 1)));
                t.row(row);
            }
            out.push_str(&format!("{figure} {title} — MAPE %\n{}\n", t.render()));
        }
        out
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let name = match self.scenario {
            Scenario::WholeSpace => "fig09_mape_space.csv",
            Scenario::PerFamilyBest => "fig10_mape_per_family.csv",
        };
        let mut t = TextTable::new(vec!["objective", "function", "variant", "mape", "ci95"]);
        for (obj, panel) in [("ET", &self.time_panel), ("EC", &self.cost_panel)] {
            for r in panel {
                for c in &r.cells {
                    t.row(vec![
                        obj.to_string(),
                        r.function.to_string(),
                        c.variant.to_string(),
                        c.mean.to_string(),
                        c.ci.to_string(),
                    ]);
                }
            }
        }
        t.write_csv(name)
    }
}

fn run_panel(
    opts: &ExperimentOpts,
    objective: Objective,
    scenario: Scenario,
) -> freedom::Result<Vec<MapeRow>> {
    let space = SearchSpace::table1();
    let panel = par_map(opts, &FunctionKind::ALL, |&kind| {
        let table = ground_truth_default(kind, opts)?;
        let mut cells = Vec::with_capacity(SurrogateKind::ALL.len());
        for variant in SurrogateKind::ALL {
            let per_rep = par_repeats(opts, |rep| -> freedom::Result<Option<f64>> {
                let seed = opts.repeat_seed(rep);
                let optimizer = BayesianOptimizer::new(
                    variant,
                    BoConfig {
                        seed,
                        budget: opts.budget,
                        surrogate_refit_every: opts.surrogate_refit_every,
                        ..BoConfig::default()
                    },
                );
                let mut evaluator = TableEvaluator::new(&table);
                let run = optimizer.optimize(&space, &mut evaluator, objective)?;
                let Some(model) = optimizer.fit_on_trials(&run.trials, objective, seed) else {
                    return Ok(None);
                };
                let mape = match scenario {
                    Scenario::WholeSpace => {
                        mape_over_space(model.as_ref(), &space, &table, objective)?
                    }
                    Scenario::PerFamilyBest => {
                        mape_per_family_best(model.as_ref(), &space, &table, objective)?
                    }
                };
                Ok(Some(mape))
            });
            let mut mapes = Vec::with_capacity(opts.opt_repeats);
            for r in per_rep {
                if let Some(m) = r? {
                    mapes.push(m);
                }
            }
            cells.push(MapeCell {
                variant,
                mean: stats::mean(&mapes).unwrap_or(f64::NAN),
                ci: stats::ci95_half_width(&mapes).unwrap_or(0.0),
            });
        }
        Ok(MapeRow {
            function: kind,
            cells,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(panel)
}

/// Runs the experiment for one scenario.
pub fn run(opts: &ExperimentOpts, scenario: Scenario) -> freedom::Result<MapeResult> {
    Ok(MapeResult {
        scenario,
        time_panel: run_panel(opts, Objective::ExecutionTime, scenario)?,
        cost_panel: run_panel(opts, Objective::ExecutionCost, scenario)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_predicts_better_than_tree_variants_on_average() {
        let result = run(&ExperimentOpts::fast(), Scenario::WholeSpace).unwrap();
        assert_eq!(result.time_panel.len(), 6);
        // Average GP advantage across functions (ET panel) should be > 1:
        // the paper's headline is "up to 16x lower MAPE".
        let advantages: Vec<f64> = result
            .time_panel
            .iter()
            .map(MapeResult::gp_advantage)
            .filter(|v| v.is_finite())
            .collect();
        let mean_adv = stats::mean(&advantages).unwrap();
        assert!(mean_adv > 1.0, "GP advantage {mean_adv}");
        for r in &result.time_panel {
            for c in &r.cells {
                assert!(c.mean >= 0.0, "{} {}: {}", r.function, c.variant, c.mean);
            }
        }
        assert!(result.render().contains("Figure 9"));
    }

    #[test]
    fn per_family_scenario_runs() {
        let result = run(&ExperimentOpts::fast(), Scenario::PerFamilyBest).unwrap();
        assert_eq!(result.cost_panel.len(), 6);
        assert!(result.render().contains("Figure 10"));
    }
}

//! Figure 14: hierarchical multi-objective optimization with θ = 20%.
//!
//! For both orderings (primary ET / primary EC), the model-driven choice
//! and the oracle ("ideal") choice are evaluated on ground truth and
//! normalized to the configuration found when optimizing the primary
//! objective alone.

use freedom::interfaces::{hierarchical_ideal, hierarchical_interface};
use freedom_optimizer::Objective;
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// The paper's degradation threshold.
pub const THETA: f64 = 0.20;

/// One function's hierarchical outcome for one ordering, all normalized to
/// the primary-only best configuration's actual metrics.
#[derive(Debug, Clone)]
pub struct HierarchicalRow {
    /// Function measured.
    pub function: FunctionKind,
    /// Model choice: normalized actual execution time.
    pub norm_et: f64,
    /// Model choice: normalized actual execution cost.
    pub norm_ec: f64,
    /// Oracle choice: normalized actual execution time.
    pub ideal_norm_et: f64,
    /// Oracle choice: normalized actual execution cost.
    pub ideal_norm_ec: f64,
}

/// The full Figure 14 dataset.
#[derive(Debug, Clone)]
pub struct Fig14Result {
    /// Primary = execution time, secondary = cost.
    pub primary_et: Vec<HierarchicalRow>,
    /// Primary = execution cost, secondary = time.
    pub primary_ec: Vec<HierarchicalRow>,
}

impl Fig14Result {
    /// Renders both orderings.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 14 — hierarchical MO, θ = 20%\n");
        for (title, rows) in [
            ("Primary: ET, Secondary: EC", &self.primary_et),
            ("Primary: EC, Secondary: ET", &self.primary_ec),
        ] {
            let mut t = TextTable::new(vec!["function", "ET", "ideal-ET", "EC", "ideal-EC"]);
            for r in rows {
                t.row(vec![
                    r.function.to_string(),
                    fmt_f(r.norm_et, 2),
                    fmt_f(r.ideal_norm_et, 2),
                    fmt_f(r.norm_ec, 2),
                    fmt_f(r.ideal_norm_ec, 2),
                ]);
            }
            out.push_str(&format!(
                "\n{title} (normalized to primary-only best)\n{}",
                t.render()
            ));
        }
        out
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec![
            "ordering",
            "function",
            "norm_et",
            "norm_ec",
            "ideal_norm_et",
            "ideal_norm_ec",
        ]);
        for (ordering, rows) in [
            ("ET-first", &self.primary_et),
            ("EC-first", &self.primary_ec),
        ] {
            for r in rows {
                t.row(vec![
                    ordering.to_string(),
                    r.function.to_string(),
                    r.norm_et.to_string(),
                    r.norm_ec.to_string(),
                    r.ideal_norm_et.to_string(),
                    r.ideal_norm_ec.to_string(),
                ]);
            }
        }
        t.write_csv("fig14_hierarchical.csv")
    }
}

fn run_ordering(
    opts: &ExperimentOpts,
    primary: Objective,
) -> freedom::Result<Vec<HierarchicalRow>> {
    par_map(opts, &FunctionKind::ALL, |&kind| {
        let table = ground_truth_default(kind, opts)?;
        let outcome = hierarchical_interface(
            kind,
            &kind.default_input(),
            primary,
            THETA,
            SurrogateKind::Gp,
            opts.seed,
        )?;
        // Normalize actual metrics against the primary-only best config.
        let base = table
            .lookup(&outcome.primary_best.config)
            .ok_or_else(|| freedom::FreedomError::InsufficientData("base config missing".into()))?;
        let chosen = table.lookup(&outcome.chosen.config).ok_or_else(|| {
            freedom::FreedomError::InsufficientData("chosen config missing".into())
        })?;
        let ideal = hierarchical_ideal(&table, primary, THETA).ok_or_else(|| {
            freedom::FreedomError::InsufficientData("no ideal hierarchical choice".into())
        })?;
        Ok(HierarchicalRow {
            function: kind,
            norm_et: chosen.exec_time_secs / base.exec_time_secs,
            norm_ec: chosen.exec_cost_usd / base.exec_cost_usd,
            ideal_norm_et: ideal.predicted_time_secs / base.exec_time_secs,
            ideal_norm_ec: ideal.predicted_cost_usd / base.exec_cost_usd,
        })
    })
    .into_iter()
    .collect()
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<Fig14Result> {
    Ok(Fig14Result {
        primary_et: run_ordering(opts, Objective::ExecutionTime)?,
        primary_ec: run_ordering(opts, Objective::ExecutionCost)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_trades_within_reasonable_budgets() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.primary_et.len(), 6);
        assert_eq!(result.primary_ec.len(), 6);
        for r in &result.primary_et {
            // The ideal choice respects the θ budget on the primary (ET)
            // objective relative to the primary-only best. Note the base
            // is the best *found* config, which can be slightly worse than
            // the space optimum, so allow headroom.
            assert!(
                r.ideal_norm_et <= 1.0 + THETA + 0.05,
                "{}: ideal ET {}",
                r.function,
                r.ideal_norm_et
            );
            // Trading time should not *increase* cost for the ideal.
            assert!(
                r.ideal_norm_ec <= 1.0 + 1e-9,
                "{}: ideal EC {}",
                r.function,
                r.ideal_norm_ec
            );
            // Model choices sit near the ideal, allowing prediction error.
            assert!(r.norm_et < 2.0, "{}: ET {}", r.function, r.norm_et);
        }
        assert!(result.render().contains("Figure 14"));
    }
}

//! Text-table rendering and CSV export for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use freedom_linalg::stats::BoxplotSummary;

/// Directory CSV artifacts are written to (`FREEDOM_RESULTS` env override,
/// default `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("FREEDOM_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Writes the table as CSV into [`results_dir()`].
    pub fn write_csv(&self, filename: &str) -> io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(filename);
        self.write_csv_to(&path)?;
        Ok(path)
    }

    /// Writes the table as CSV to an explicit path.
    pub fn write_csv_to(&self, path: &Path) -> io::Result<()> {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let line = |cells: &[String]| {
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "{}", line(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row));
        }
        fs::write(path, out)
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(v: f64, prec: usize) -> String {
    if v.is_nan() {
        "—".to_string()
    } else {
        format!("{v:.prec$}")
    }
}

/// Formats a cost in scientific-ish USD (the paper's 1e-5 axis style).
pub fn fmt_usd(v: f64) -> String {
    if v.is_nan() {
        "—".to_string()
    } else {
        format!("{v:.3e}")
    }
}

/// Formats a boxplot summary compactly:
/// `lo⊢ q1 [median] q3 ⊣hi (+n outliers)`.
pub fn fmt_box(b: &BoxplotSummary, prec: usize) -> String {
    let mut s = format!(
        "{}⊢ {} [{}] {} ⊣{}",
        fmt_f(b.lo_whisker, prec),
        fmt_f(b.q1, prec),
        fmt_f(b.median, prec),
        fmt_f(b.q3, prec),
        fmt_f(b.hi_whisker, prec),
    );
    if b.outliers > 0 {
        let _ = write!(s, " (+{} outl.)", b.outliers);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom_linalg::stats::boxplot;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let tmp = std::env::temp_dir().join("freedom_report_test.csv");
        t.write_csv_to(&tmp).unwrap();
        let content = std::fs::read_to_string(&tmp).unwrap();
        assert!(content.contains("\"x,y\""));
        assert!(content.contains("\"he said \"\"hi\"\"\""));
        let _ = std::fs::remove_file(&tmp);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(f64::NAN, 2), "—");
        assert!(fmt_usd(3.2e-5).contains('e'));
    }

    #[test]
    fn boxplot_formatting() {
        let b = boxplot(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        let s = fmt_box(&b, 1);
        assert!(s.contains('['));
        assert!(s.contains("outl."));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert!(t.render().contains("only-one"));
    }
}

//! Figure 4: best-found configuration after 20 trials — Random sampling
//! vs. Latin hypercube vs. BO with GP, normalized to the best
//! configuration in the space, over repeated runs.

use freedom_linalg::stats::{self, BoxplotSummary};
use freedom_optimizer::{
    run_sampling, BayesianOptimizer, BoConfig, LatinHypercube, Objective, RandomSearch,
    SearchSpace, TableEvaluator,
};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, par_repeats, ExperimentOpts};
use crate::report::{fmt_box, TextTable};

/// The three methods of Figure 4, in presentation order.
pub const METHODS: [&str; 3] = ["Random", "LHS", "BO-GP"];

/// One (function, method) cell: the distribution of normalized best-found
/// values across repetitions.
#[derive(Debug, Clone)]
pub struct MethodCell {
    /// Method name (see [`METHODS`]).
    pub method: &'static str,
    /// Normalized best-found values, one per repetition (1.0 = optimal).
    pub norm_best: Vec<f64>,
    /// Boxplot over the repetitions.
    pub summary: BoxplotSummary,
}

/// One function's Figure 4 data for one objective.
#[derive(Debug, Clone)]
pub struct FunctionCells {
    /// Function measured.
    pub function: FunctionKind,
    /// Cells in [`METHODS`] order.
    pub cells: Vec<MethodCell>,
}

/// The full Figure 4 dataset (one panel per objective).
#[derive(Debug, Clone)]
pub struct Fig04Result {
    /// Panel (a): execution time.
    pub time_panel: Vec<FunctionCells>,
    /// Panel (b): execution cost.
    pub cost_panel: Vec<FunctionCells>,
}

impl Fig04Result {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, panel) in [
            ("(a) Norm. best ET after 20 trials", &self.time_panel),
            ("(b) Norm. best EC after 20 trials", &self.cost_panel),
        ] {
            let mut t = TextTable::new(vec!["function", "Random", "LHS", "BO-GP"]);
            for f in panel {
                let mut row = vec![f.function.to_string()];
                for c in &f.cells {
                    row.push(fmt_box(&c.summary, 2));
                }
                t.row(row);
            }
            out.push_str(&format!("Figure 4 {title}\n{}\n", t.render()));
        }
        out
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec!["objective", "function", "method", "rep", "norm_best"]);
        for (obj, panel) in [("ET", &self.time_panel), ("EC", &self.cost_panel)] {
            for f in panel {
                for c in &f.cells {
                    for (rep, v) in c.norm_best.iter().enumerate() {
                        t.row(vec![
                            obj.to_string(),
                            f.function.to_string(),
                            c.method.to_string(),
                            rep.to_string(),
                            v.to_string(),
                        ]);
                    }
                }
            }
        }
        t.write_csv("fig04_sampling_vs_bo.csv")
    }
}

fn run_panel(opts: &ExperimentOpts, objective: Objective) -> freedom::Result<Vec<FunctionCells>> {
    let space = SearchSpace::table1();
    // Functions fan out across cores, and each function's repetitions fan
    // out again; per-repetition seeds keep results identical to the
    // sequential path.
    let panel = par_map(opts, &FunctionKind::ALL, |&kind| {
        let table = ground_truth_default(kind, opts)?;
        let truth = match objective {
            Objective::ExecutionTime => table.best_by_time(),
            _ => table.best_by_cost(),
        }
        .map(|p| match objective {
            Objective::ExecutionTime => p.exec_time_secs,
            _ => p.exec_cost_usd,
        })
        .ok_or_else(|| {
            freedom::FreedomError::InsufficientData(format!("no feasible config for {kind}"))
        })?;

        let per_rep = par_repeats(opts, |rep| -> freedom::Result<[f64; 3]> {
            let seed = opts.repeat_seed(rep);
            let mut evaluator = TableEvaluator::new(&table);
            let runs = [
                run_sampling(
                    &mut RandomSearch::new(seed),
                    &space,
                    &mut evaluator,
                    objective,
                    opts.budget,
                )?,
                run_sampling(
                    &mut LatinHypercube::new(seed),
                    &space,
                    &mut evaluator,
                    objective,
                    opts.budget,
                )?,
                BayesianOptimizer::new(
                    SurrogateKind::Gp,
                    BoConfig {
                        seed,
                        budget: opts.budget,
                        surrogate_refit_every: opts.surrogate_refit_every,
                        ..BoConfig::default()
                    },
                )
                .optimize(&space, &mut evaluator, objective)?,
            ];
            Ok(runs.map(|run| run.best_value().unwrap_or(f64::NAN) / truth))
        });

        let mut cells: Vec<MethodCell> = METHODS
            .iter()
            .map(|&method| MethodCell {
                method,
                norm_best: Vec::with_capacity(opts.opt_repeats),
                summary: stats::boxplot(&[1.0]).expect("non-empty"),
            })
            .collect();
        for rep_values in per_rep {
            for (cell, v) in cells.iter_mut().zip(rep_values?) {
                cell.norm_best.push(v);
            }
        }
        for cell in &mut cells {
            cell.summary = stats::boxplot(&cell.norm_best).expect("repetitions exist");
        }
        Ok(FunctionCells {
            function: kind,
            cells,
        })
    });
    panel.into_iter().collect()
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<Fig04Result> {
    Ok(Fig04Result {
        time_panel: run_panel(opts, Objective::ExecutionTime)?,
        cost_panel: run_panel(opts, Objective::ExecutionCost)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_find_reasonable_configs() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        for panel in [&result.time_panel, &result.cost_panel] {
            assert_eq!(panel.len(), 6);
            for f in panel {
                for c in &f.cells {
                    // Normalized best is ≥ 1 by construction and should be
                    // within ~2x of optimal for every method (Fig. 4's
                    // y-axis tops out around 1.8).
                    for &v in &c.norm_best {
                        assert!(v >= 1.0 - 1e-9, "{} {}: {v}", f.function, c.method);
                        assert!(v < 2.6, "{} {}: {v}", f.function, c.method);
                    }
                }
            }
        }
        assert!(result.render().contains("BO-GP"));
    }
}

//! Ablation study of the optimizer design choices (DESIGN.md §6).
//!
//! The paper motivates §5.1's search-space slicing by noting that penalty
//! values "created a non-smooth underlying function, which affects the
//! quality of the optimization". This experiment quantifies that and the
//! other knobs on our substrate:
//!
//! - failure handling: slicing vs. large-penalty;
//! - initial random samples: 1 / 3 (paper default) / 5;
//! - measurement noise σ: 0 / 3% / 10%;
//! - EI exploration ξ: 0.001 / 0.01 (default) / 0.1.
//!
//! Quality is the best-found execution time after the budget, normalized
//! to the space optimum, plus the number of failed (wasted) trials.

use freedom::GatewayEvaluator;
use freedom_faas::{FunctionSpec, Gateway};
use freedom_linalg::stats;
use freedom_optimizer::{
    BayesianOptimizer, BoConfig, FailureHandling, Objective, SearchSpace, TableEvaluator,
};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_repeats, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// One ablation setting's aggregate quality.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Knob group, e.g. `"failure"`.
    pub group: &'static str,
    /// Setting label, e.g. `"slice"`.
    pub setting: String,
    /// Mean normalized best-found ET (1.0 = space optimum).
    pub mean_norm_best: f64,
    /// 95% CI half-width of the normalized best.
    pub ci: f64,
    /// Mean failed trials per run.
    pub mean_failures: f64,
}

/// The full ablation dataset.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// All rows, grouped by knob.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Looks up one setting's row.
    pub fn row(&self, group: &str, setting: &str) -> Option<&AblationRow> {
        self.rows
            .iter()
            .find(|r| r.group == group && r.setting == setting)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "knob",
            "setting",
            "norm. best ET",
            "ci95",
            "failed trials",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.group.to_string(),
                r.setting.clone(),
                fmt_f(r.mean_norm_best, 3),
                fmt_f(r.ci, 3),
                fmt_f(r.mean_failures, 1),
            ]);
        }
        format!(
            "Ablation study (transcode, ET objective; DESIGN.md §6)\n{}",
            t.render()
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec!["knob", "setting", "norm_best", "ci95", "failures"]);
        for r in &self.rows {
            t.row(vec![
                r.group.to_string(),
                r.setting.clone(),
                r.mean_norm_best.to_string(),
                r.ci.to_string(),
                r.mean_failures.to_string(),
            ]);
        }
        t.write_csv("ablation_study.csv")
    }
}

/// transcode exercises every knob: it OOMs at small memory (slicing), is
/// parallel (a real optimum to find), and arch-sensitive.
const FUNCTION: FunctionKind = FunctionKind::Transcode;

fn table_runs(
    opts: &ExperimentOpts,
    optimum: f64,
    table: &freedom_faas::PerfTable,
    config_of: impl Fn(u64) -> BoConfig + Sync,
) -> freedom::Result<(f64, f64, f64)> {
    let space = SearchSpace::table1();
    let per_rep = par_repeats(opts, |rep| -> freedom::Result<(Option<f64>, f64)> {
        let mut evaluator = TableEvaluator::new(table);
        let run = BayesianOptimizer::new(SurrogateKind::Gp, config_of(opts.repeat_seed(rep)))
            .optimize(&space, &mut evaluator, Objective::ExecutionTime)?;
        Ok((run.best_value(), run.failures() as f64))
    });
    let mut bests = Vec::with_capacity(opts.opt_repeats);
    let mut failures = Vec::with_capacity(opts.opt_repeats);
    for r in per_rep {
        let (best, fails) = r?;
        if let Some(best) = best {
            bests.push(best / optimum);
        }
        failures.push(fails);
    }
    Ok((
        stats::mean(&bests).unwrap_or(f64::NAN),
        stats::ci95_half_width(&bests).unwrap_or(0.0),
        stats::mean(&failures).unwrap_or(0.0),
    ))
}

fn noisy_gateway_runs(
    opts: &ExperimentOpts,
    optimum: f64,
    sigma: f64,
) -> freedom::Result<(f64, f64, f64)> {
    let space = SearchSpace::table1();
    let per_rep = par_repeats(opts, |rep| -> freedom::Result<(Option<f64>, f64)> {
        let seed = opts.repeat_seed(rep);
        let mut gateway = Gateway::new(seed)?;
        gateway.set_noise_sigma(sigma);
        gateway.deploy(
            FunctionSpec::new(FUNCTION.name(), FUNCTION),
            space.configs()[0],
        )?;
        let mut evaluator =
            GatewayEvaluator::new(gateway, FUNCTION.name(), FUNCTION.default_input(), 1);
        let run = BayesianOptimizer::new(
            SurrogateKind::Gp,
            BoConfig {
                seed,
                budget: opts.budget,
                surrogate_refit_every: opts.surrogate_refit_every,
                ..BoConfig::default()
            },
        )
        .optimize(&space, &mut evaluator, Objective::ExecutionTime)?;
        Ok((run.best_value(), run.failures() as f64))
    });
    let mut bests = Vec::with_capacity(opts.opt_repeats);
    let mut failures = Vec::with_capacity(opts.opt_repeats);
    for r in per_rep {
        let (best, fails) = r?;
        if let Some(best) = best {
            bests.push(best / optimum);
        }
        failures.push(fails);
    }
    Ok((
        stats::mean(&bests).unwrap_or(f64::NAN),
        stats::ci95_half_width(&bests).unwrap_or(0.0),
        stats::mean(&failures).unwrap_or(0.0),
    ))
}

/// Runs the ablation study.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<AblationResult> {
    let table = ground_truth_default(FUNCTION, opts)?;
    let optimum = table
        .best_by_time()
        .map(|p| p.exec_time_secs)
        .ok_or_else(|| freedom::FreedomError::InsufficientData("no feasible config".into()))?;
    let mut rows = Vec::new();

    // Knob 1: failure handling.
    for (setting, handling) in [
        ("slice", FailureHandling::Slice),
        ("penalty_1000", FailureHandling::Penalty(1000.0)),
    ] {
        let (mean, ci, fails) = table_runs(opts, optimum, &table, |seed| BoConfig {
            failure_handling: handling,
            seed,
            budget: opts.budget,
            surrogate_refit_every: opts.surrogate_refit_every,
            ..BoConfig::default()
        })?;
        rows.push(AblationRow {
            group: "failure",
            setting: setting.to_string(),
            mean_norm_best: mean,
            ci,
            mean_failures: fails,
        });
    }

    // Knob 2: initial samples.
    for n_initial in [1usize, 3, 5] {
        let (mean, ci, fails) = table_runs(opts, optimum, &table, |seed| BoConfig {
            n_initial,
            seed,
            budget: opts.budget,
            surrogate_refit_every: opts.surrogate_refit_every,
            ..BoConfig::default()
        })?;
        rows.push(AblationRow {
            group: "init_samples",
            setting: n_initial.to_string(),
            mean_norm_best: mean,
            ci,
            mean_failures: fails,
        });
    }

    // Knob 3: measurement noise (live gateway, single-invocation trials).
    for sigma_pct in [0u32, 3, 10] {
        let (mean, ci, fails) = noisy_gateway_runs(opts, optimum, sigma_pct as f64 / 100.0)?;
        rows.push(AblationRow {
            group: "noise_sigma",
            setting: format!("{sigma_pct}%"),
            mean_norm_best: mean,
            ci,
            mean_failures: fails,
        });
    }

    // Knob 4: EI exploration.
    for xi in [0.001, 0.01, 0.1] {
        let (mean, ci, fails) = table_runs(opts, optimum, &table, |seed| BoConfig {
            xi,
            seed,
            budget: opts.budget,
            surrogate_refit_every: opts.surrogate_refit_every,
            ..BoConfig::default()
        })?;
        rows.push(AblationRow {
            group: "xi",
            setting: xi.to_string(),
            mean_norm_best: mean,
            ci,
            mean_failures: fails,
        });
    }

    // Knob 5: acquisition function.
    for (setting, acquisition) in [
        ("EI", freedom_optimizer::Acquisition::ExpectedImprovement),
        (
            "LCB_1.96",
            freedom_optimizer::Acquisition::LowerConfidenceBound { kappa: 1.96 },
        ),
    ] {
        let (mean, ci, fails) = table_runs(opts, optimum, &table, |seed| BoConfig {
            acquisition,
            seed,
            budget: opts.budget,
            surrogate_refit_every: opts.surrogate_refit_every,
            ..BoConfig::default()
        })?;
        rows.push(AblationRow {
            group: "acquisition",
            setting: setting.to_string(),
            mean_norm_best: mean,
            ci,
            mean_failures: fails,
        });
    }

    Ok(AblationResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_setting_produces_sane_quality() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.rows.len(), 2 + 3 + 3 + 3 + 2);
        for r in &result.rows {
            // Noisy-gateway rows are normalized by the (differently
            // seeded) reference table's optimum, so a lucky noise draw can
            // land a few percent below 1.0; table-replay rows cannot.
            let lower = if r.group == "noise_sigma" {
                0.8
            } else {
                1.0 - 1e-9
            };
            assert!(
                r.mean_norm_best >= lower,
                "{}-{}: {}",
                r.group,
                r.setting,
                r.mean_norm_best
            );
            assert!(
                r.mean_norm_best < 3.0,
                "{}-{}: {}",
                r.group,
                r.setting,
                r.mean_norm_best
            );
            assert!(r.mean_failures >= 0.0);
        }
        // Slicing exists in both modes; the table has the rows we promise.
        assert!(result.row("failure", "slice").is_some());
        assert!(result.row("failure", "penalty_1000").is_some());
        assert!(result.render().contains("Ablation"));
    }
}

//! Table 3: number of alternative instance families with at least one
//! configuration within θ of the best configuration, per objective.

use freedom::provider::alternative_families_within;
use freedom_optimizer::Objective;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, ExperimentOpts};
use crate::report::TextTable;

/// The θ thresholds of Table 3.
pub const THETAS: [f64; 3] = [0.05, 0.10, 0.20];

/// The five objectives of Table 3, in column order.
pub fn objectives() -> [Objective; 5] {
    [
        Objective::ExecutionTime,
        Objective::Weighted { wt: 0.25, wc: 0.75 },
        Objective::Weighted { wt: 0.5, wc: 0.5 },
        Objective::Weighted { wt: 0.75, wc: 0.25 },
        Objective::ExecutionCost,
    ]
}

/// One function's row: `counts[objective][theta]`.
#[derive(Debug, Clone)]
pub struct AlternativeRow {
    /// Function measured.
    pub function: FunctionKind,
    /// `counts[i][j]` = alternatives for `objectives()[i]` at `THETAS[j]`.
    pub counts: Vec<Vec<usize>>,
}

/// The full Table 3.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// Per-function rows.
    pub rows: Vec<AlternativeRow>,
}

impl Table3Result {
    /// Cells where *no* alternative family exists (the paper's red cells).
    pub fn red_cells(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.counts.iter().flatten())
            .filter(|&&c| c == 0)
            .count()
    }

    /// Cells where *every* other family qualifies (the paper's blue cells).
    pub fn blue_cells(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| r.counts.iter().flatten())
            .filter(|&&c| c == 5)
            .count()
    }

    /// Renders the paper-style matrix.
    pub fn render(&self) -> String {
        let mut headers = vec!["benchmark".to_string()];
        for obj in objectives() {
            for theta in THETAS {
                headers.push(format!("{obj} {}%", (theta * 100.0) as u32));
            }
        }
        let mut t = TextTable::new(headers);
        for row in &self.rows {
            let mut cells = vec![row.function.to_string()];
            for per_obj in &row.counts {
                for &c in per_obj {
                    cells.push(c.to_string());
                }
            }
            t.row(cells);
        }
        format!(
            "Table 3 — alternative instance families within θ of the best configuration\n{}\nred cells (no alternative): {} | blue cells (all 5 families): {}\n",
            t.render(),
            self.red_cells(),
            self.blue_cells(),
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec!["function", "objective", "theta", "alternatives"]);
        for row in &self.rows {
            for (i, obj) in objectives().iter().enumerate() {
                for (j, theta) in THETAS.iter().enumerate() {
                    t.row(vec![
                        row.function.to_string(),
                        obj.to_string(),
                        theta.to_string(),
                        row.counts[i][j].to_string(),
                    ]);
                }
            }
        }
        t.write_csv("table3_alternatives.csv")
    }
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<Table3Result> {
    let rows = par_map(opts, &FunctionKind::ALL, |&kind| {
        let table = ground_truth_default(kind, opts)?;
        let mut counts = Vec::with_capacity(5);
        for obj in objectives() {
            let mut per_theta = Vec::with_capacity(THETAS.len());
            for theta in THETAS {
                per_theta.push(alternative_families_within(&table, obj, theta)?);
            }
            counts.push(per_theta);
        }
        Ok(AlternativeRow {
            function: kind,
            counts,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(Table3Result { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternatives_exist_for_most_cells() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.rows.len(), 6);
        for row in &result.rows {
            for per_obj in &row.counts {
                // Counts grow (weakly) with theta.
                assert!(per_obj[0] <= per_obj[1] && per_obj[1] <= per_obj[2]);
                for &c in per_obj {
                    assert!(c <= 5);
                }
            }
        }
        // The paper: "except for two scenarios, there are opportunities to
        // use idle instances of different types within 10%". Our shape:
        // most 10%-cells are non-zero.
        let ten_pct_nonzero = result
            .rows
            .iter()
            .flat_map(|r| r.counts.iter().map(|per_obj| per_obj[1]))
            .filter(|&c| c > 0)
            .count();
        assert!(
            ten_pct_nonzero >= 24,
            "only {ten_pct_nonzero}/30 cells non-zero"
        );
        // Both special cases exist somewhere in the matrix.
        assert!(result.red_cells() > 0, "no red cells at all");
        assert!(result.blue_cells() > 0, "no blue cells at all");
        assert!(result.render().contains("Table 3"));
    }
}

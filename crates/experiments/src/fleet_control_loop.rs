//! Closed-loop control-plane sweep: what feedback buys the provider.
//!
//! The fleet sweep ([`crate::fleet_simulation`]) scores *static*
//! admission policies; this experiment closes the loop. Every cell
//! replays one trace under one market tightness with one controller
//! revising the provider's decisions online at the control cadence:
//!
//! - `static_greedy` / `static_headroom` — the open-loop baselines
//!   (today's fixed `ProviderPlan`s);
//! - `pid` — [`HeadroomPid`](freedom::controller::HeadroomPid)
//!   feedback from the observed demotion rate to the admission
//!   utilization ceiling;
//! - `right_sizer` —
//!   [`SurrogateRightSizer`](freedom::controller::SurrogateRightSizer)
//!   re-planning per-function placements from the latencies production
//!   traffic actually observed, through warm-start surrogate refits and
//!   the idle-capacity planner's guardrail.
//!
//! Reported per cell: provider savings vs. the best-config-only
//! baseline, spot share, demotions, rejections, SLO violations, the
//! ceiling's settling time (how long the feedback loop takes to reach
//! its final operating point), and how many placement revisions the
//! controller issued.

use freedom::fleet::{
    AdmissionPolicy, ControlConfig, ControllerConfig, FleetConfig, FleetReport, FleetSimulator,
    PidConfig, PlacementStrategy, ReplayConfig, ReplayStats, RightSizerConfig, StreamTrace,
    Telemetry,
};

use crate::context::{par_map, ExperimentOpts};
use crate::fleet_simulation::{
    fleet_scale, market_config, market_tightness, trace_sources, tuned_base_plans,
};
use crate::report::{fmt_f, TextTable};

/// Replay window used by the windowed engine throughout the sweep.
const WINDOW_SECS: f64 = 60.0;

/// Controller tick cadence: three revisions per supply step of the
/// fleet sweep's markets (60 s), so feedback reacts between drops.
pub const CADENCE_SECS: f64 = 20.0;

/// Ceiling tolerance of the settling-time metric.
const SETTLE_EPS: f64 = 0.02;

/// One controller preset of the sweep: the control configuration plus
/// the static admission policy the market starts from.
#[derive(Debug, Clone, Copy)]
pub struct ControllerPreset {
    /// Row label.
    pub label: &'static str,
    /// The control loop (cadence + controller).
    pub control: ControlConfig,
    /// Admission policy configured into the market (the PID overrides it
    /// from its own initial ceiling).
    pub admission: AdmissionPolicy,
}

/// The four presets: both open-loop baselines, then the two feedback
/// controllers. `headroom` is the static utilization-ceiling policy the
/// non-greedy presets start from — the sweep passes the planner-emitted
/// one, so the baseline matches the fleet sweep's "headroom" cells.
pub fn controller_presets(headroom: AdmissionPolicy) -> [ControllerPreset; 4] {
    let static_loop = |controller| ControlConfig {
        cadence_secs: CADENCE_SECS,
        controller,
    };
    [
        ControllerPreset {
            label: "static_greedy",
            control: static_loop(ControllerConfig::Static),
            admission: AdmissionPolicy::Greedy,
        },
        ControllerPreset {
            label: "static_headroom",
            control: static_loop(ControllerConfig::Static),
            admission: headroom,
        },
        ControllerPreset {
            label: "pid",
            control: static_loop(ControllerConfig::HeadroomPid(PidConfig::default())),
            admission: AdmissionPolicy::Greedy,
        },
        ControllerPreset {
            label: "right_sizer",
            control: static_loop(ControllerConfig::SurrogateRightSizer(
                RightSizerConfig::default(),
            )),
            admission: headroom,
        },
    ]
}

/// One sweep data point.
///
/// `Debug` deliberately covers only the *result* fields: `stats` and
/// `telemetry` are replay-engine diagnostics (effort counters differ
/// between the sequential and windowed engines, and the digest carries
/// sampled wall-clock timings), so they are excluded from the
/// bit-equality surface the determinism tests compare.
#[derive(Clone)]
pub struct ControlRow {
    /// Workload shape label.
    pub source: &'static str,
    /// Market tightness preset label.
    pub tightness: &'static str,
    /// Controller preset label.
    pub controller: &'static str,
    /// Best-config-only baseline cost of this (source, tightness) cell.
    pub baseline_cost_usd: f64,
    /// The closed-loop idle-aware replay.
    pub report: FleetReport,
    /// Simulated seconds until the admission ceiling settled within
    /// ±0.02 of its final value (0 when it never moved).
    pub settling_secs: f64,
    /// Admission ceiling after the last tick (∞ = greedy).
    pub final_ceiling: f64,
    /// Placement revisions the controller issued over the trace.
    pub replans: u32,
    /// Replay-engine effort and peak-memory stats of the closed-loop
    /// replay (peak in-flight, ladder anchors, fallback windows).
    pub stats: ReplayStats,
    /// One-line telemetry counter digest of the replay
    /// ([`Telemetry::brief`]).
    pub telemetry: String,
}

impl std::fmt::Debug for ControlRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlRow")
            .field("source", &self.source)
            .field("tightness", &self.tightness)
            .field("controller", &self.controller)
            .field("baseline_cost_usd", &self.baseline_cost_usd)
            .field("report", &self.report)
            .field("settling_secs", &self.settling_secs)
            .field("final_ceiling", &self.final_ceiling)
            .field("replans", &self.replans)
            .finish_non_exhaustive()
    }
}

impl ControlRow {
    /// Provider savings vs. the best-config-only baseline.
    pub fn savings(&self) -> f64 {
        1.0 - self.report.total_cost_usd / self.baseline_cost_usd
    }
}

/// Settling time of a ceiling trajectory: the first tick after which the
/// ceiling stays within [`SETTLE_EPS`] of its final value, in simulated
/// seconds. A trajectory that never moved settles at 0.
fn settling_secs(report: &FleetReport) -> f64 {
    let Some(last) = report.control.last() else {
        return 0.0;
    };
    let settled = |c: f64| {
        (c.is_infinite() && last.ceiling.is_infinite()) || (c - last.ceiling).abs() <= SETTLE_EPS
    };
    let mut at = 0.0;
    for s in &report.control {
        if !settled(s.ceiling) {
            at = f64::NAN; // moved outside the band: settling restarts
        } else if at.is_nan() {
            at = s.at_secs;
        }
    }
    if at.is_nan() {
        report.control.last().map_or(0.0, |s| s.at_secs)
    } else {
        at
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct ControlLoopResult {
    /// Functions in the simulated fleet.
    pub n_functions: usize,
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Controller tick cadence in seconds.
    pub cadence_secs: f64,
    /// Rows, grouped by trace source, then tightness (loosest first),
    /// then controller preset.
    pub rows: Vec<ControlRow>,
}

impl ControlLoopResult {
    /// The row of one sweep cell.
    pub fn cell(&self, source: &str, tightness: &str, controller: &str) -> Option<&ControlRow> {
        self.rows
            .iter()
            .find(|r| r.source == source && r.tightness == tightness && r.controller == controller)
    }

    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "trace",
            "market",
            "controller",
            "savings",
            "spot share",
            "demoted",
            "rejected",
            "violations",
            "settle (s)",
            "ceiling",
            "replans",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.source.to_string(),
                r.tightness.to_string(),
                r.controller.to_string(),
                format!("{}%", fmt_f(r.savings() * 100.0, 1)),
                format!("{}%", fmt_f(r.report.spot_share() * 100.0, 1)),
                r.report.spot_demoted.to_string(),
                r.report.rejected.to_string(),
                r.report.slo_violations.to_string(),
                fmt_f(r.settling_secs, 0),
                if r.final_ceiling.is_infinite() {
                    "greedy".to_string()
                } else {
                    fmt_f(r.final_ceiling, 2)
                },
                r.replans.to_string(),
            ]);
        }
        format!(
            "Fleet control loop (feedback admission + online right-sizing): \
             {} functions, {}s per trace, {}s cadence\n{}",
            self.n_functions,
            fmt_f(self.duration_secs, 0),
            fmt_f(self.cadence_secs, 0),
            t.render()
        )
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec![
            "trace_source",
            "market_tightness",
            "controller",
            "invocations",
            "baseline_cost_usd",
            "cost_usd",
            "savings",
            "spot_share",
            "spot_admitted",
            "spot_demoted",
            "policy_rejections",
            "capacity_misses",
            "slo_violations",
            "p95_latency_inflation",
            "control_ticks",
            "settling_secs",
            "final_ceiling",
            "replans",
            "peak_inflight",
            "peak_resident_events",
            "ladder_anchors",
            "fallback_windows",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.source.to_string(),
                r.tightness.to_string(),
                r.controller.to_string(),
                r.report.invocations.to_string(),
                r.baseline_cost_usd.to_string(),
                r.report.total_cost_usd.to_string(),
                r.savings().to_string(),
                r.report.spot_share().to_string(),
                r.report.spot_admitted.to_string(),
                r.report.spot_demoted.to_string(),
                r.report.policy_rejections.to_string(),
                r.report.capacity_misses.to_string(),
                r.report.slo_violations.to_string(),
                r.report.p95_latency_inflation.to_string(),
                r.report.control.len().to_string(),
                r.settling_secs.to_string(),
                r.final_ceiling.to_string(),
                r.replans.to_string(),
                r.stats.peak_inflight.to_string(),
                r.stats.peak_resident_events().to_string(),
                r.stats.ladder_anchors.to_string(),
                r.stats.fallback_windows.to_string(),
            ]);
        }
        t.write_csv("fleet_control_loop.csv")
    }
}

/// Runs the sweep: every trace source × market tightness × controller
/// preset, replayed windowed across `opts.effective_threads()` workers.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<ControlLoopResult> {
    let (base_plans, planner) = tuned_base_plans(opts)?;
    let (duration_secs, n_functions) = fleet_scale(opts);
    // Feedback needs epochs to react across: the `--fast` fleet sweep's
    // two-minute traces see a single supply step, so this sweep runs
    // five times longer at the same reduced fleet size.
    let duration_secs = if opts.opt_repeats <= 2 {
        duration_secs * 5.0
    } else {
        duration_secs
    };
    let threads = opts.effective_threads();
    let plans = (0..n_functions)
        .map(|i| base_plans[i % base_plans.len()].clone())
        .collect();
    let sim = FleetSimulator::new(plans)?;

    // Traces stay lazy: each cell's replay pulls events straight from
    // the generator cursors (constant memory), re-producing the stream
    // per replay instead of holding the merged view for the whole sweep.
    let sources = trace_sources(duration_secs);
    let traces = sources
        .iter()
        .map(|(_, source)| {
            StreamTrace::generate_sharded(*source, n_functions, duration_secs, opts.seed, threads)
        })
        .collect::<freedom::Result<Vec<_>>>()?;
    let tightness = market_tightness();
    let presets = controller_presets(planner.admission_policy());

    // Every cell replays with a live per-cell recorder: the stats and
    // counter digest ride along in the row while the report itself stays
    // bit-identical to the untraced replay (the determinism lattice pins
    // this).
    let replay = |trace: &StreamTrace, strategy, config: &FleetConfig| {
        let mut tel = Telemetry::with_capacity(4096);
        let (report, stats) = if threads <= 1 {
            sim.run_stream_traced(trace, strategy, config, &mut tel)?
        } else {
            sim.run_stream_windowed_traced(
                trace,
                strategy,
                config,
                &ReplayConfig::default(),
                threads,
                WINDOW_SECS,
                &mut tel,
            )?
        };
        Ok::<_, freedom::FreedomError>((report, stats, tel.brief()))
    };

    // Baselines: one best-config-only replay per (source, tightness) —
    // the baseline never touches the market, so the controller is
    // irrelevant to it.
    let base_points: Vec<(usize, usize)> = (0..sources.len())
        .flat_map(|s| (0..tightness.len()).map(move |t| (s, t)))
        .collect();
    let baselines = par_map(opts, &base_points, |&(s, t)| {
        let config = FleetConfig {
            market: market_config(&tightness[t], AdmissionPolicy::Greedy),
            ..FleetConfig::default()
        };
        Ok(
            replay(&traces[s], PlacementStrategy::BestConfigOnly, &config)?
                .0
                .total_cost_usd,
        )
    })
    .into_iter()
    .collect::<freedom::Result<Vec<f64>>>()?;

    let points: Vec<(usize, usize, usize)> = (0..sources.len())
        .flat_map(|s| {
            (0..tightness.len()).flat_map(move |t| (0..presets.len()).map(move |c| (s, t, c)))
        })
        .collect();
    let rows = par_map(opts, &points, |&(s, t, c)| {
        let preset = &presets[c];
        let config = FleetConfig {
            market: market_config(&tightness[t], preset.admission),
            control: preset.control,
            ..FleetConfig::default()
        };
        let (report, stats, telemetry) = replay(&traces[s], PlacementStrategy::IdleAware, &config)?;
        Ok(ControlRow {
            source: sources[s].0,
            tightness: tightness[t].label,
            controller: preset.label,
            baseline_cost_usd: baselines[s * tightness.len() + t],
            settling_secs: settling_secs(&report),
            final_ceiling: report
                .control
                .last()
                .map_or(f64::INFINITY, |smp| smp.ceiling),
            replans: report.control.iter().map(|smp| smp.replanned).sum(),
            report,
            stats,
            telemetry,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(ControlLoopResult {
        n_functions,
        duration_secs,
        cadence_secs: CADENCE_SECS,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_beats_the_open_loop_where_it_matters() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.rows.len(), 4 * 3 * 4);
        for r in &result.rows {
            assert!(r.report.invocations > 0);
            assert_eq!(
                r.report.spot_admitted + r.report.spot_demoted + r.report.rejected,
                r.report.invocations,
                "{}/{}/{}",
                r.source,
                r.tightness,
                r.controller
            );
            assert!(!r.report.control.is_empty(), "every cell must tick");
        }

        // The acceptance claim: on the tight-market heavy-tail cell the
        // PID cuts demotions vs. the static greedy baseline without
        // adding SLO violations.
        let open = result.cell("heavy_tail", "tight", "static_greedy").unwrap();
        let pid = result.cell("heavy_tail", "tight", "pid").unwrap();
        assert!(
            open.report.spot_demoted > 0,
            "tight volatile market must demote under greedy admission"
        );
        assert!(
            pid.report.spot_demoted < open.report.spot_demoted,
            "pid must reduce demotions: {} vs {}",
            pid.report.spot_demoted,
            open.report.spot_demoted
        );
        assert!(
            pid.report.slo_violations <= open.report.slo_violations,
            "pid must not add violations: {} vs {}",
            pid.report.slo_violations,
            open.report.slo_violations
        );
        // The loop actually moved and the trajectory metrics see it.
        assert!(pid.final_ceiling < 1.0);
        assert!(pid.settling_secs >= 0.0);

        // Static rows never revise placements; the right-sizer does.
        for r in &result.rows {
            if r.controller.starts_with("static") {
                assert_eq!(r.replans, 0, "{}/{}", r.source, r.tightness);
                assert_eq!(r.settling_secs, 0.0);
            }
        }
        assert!(
            result
                .rows
                .iter()
                .filter(|r| r.controller == "right_sizer")
                .map(|r| r.replans)
                .sum::<u32>()
                > 0,
            "observed latencies must trigger replans somewhere"
        );
        assert!(result.render().contains("control loop"));
    }
}

//! Figures 5 and 6: convergence of the four BO variants toward the best
//! configuration, for execution time (Fig. 5) and execution cost (Fig. 6).
//!
//! For each function and variant the best-found objective value is traced
//! after every trial, averaged over repetitions with a 95% confidence
//! interval — the paper's shaded-line plots, rendered as tables.

use freedom_linalg::stats;
use freedom_optimizer::{BayesianOptimizer, BoConfig, Objective, SearchSpace, TableEvaluator};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, par_repeats, ExperimentOpts};
use crate::report::{fmt_f, fmt_usd, TextTable};

/// One (function, variant) convergence trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Surrogate variant.
    pub variant: SurrogateKind,
    /// Mean best-so-far value after each trial (length = budget).
    pub mean_by_step: Vec<f64>,
    /// 95% CI half-width after each trial.
    pub ci_by_step: Vec<f64>,
}

/// One function's traces plus the ground-truth optimum (the dashed line).
#[derive(Debug, Clone)]
pub struct FunctionTraces {
    /// Function measured.
    pub function: FunctionKind,
    /// Best value in the search space (the dashed line in the figures).
    pub optimum: f64,
    /// Traces in [`SurrogateKind::ALL`] order.
    pub traces: Vec<Trace>,
}

impl FunctionTraces {
    /// Final-step gap of a variant, as a fraction of the optimum
    /// (`0.05` = within 5%).
    pub fn final_gap(&self, variant: SurrogateKind) -> Option<f64> {
        let trace = self.traces.iter().find(|t| t.variant == variant)?;
        let last = *trace.mean_by_step.last()?;
        Some((last - self.optimum) / self.optimum)
    }
}

/// The full Figure 5 (ET) or Figure 6 (EC) dataset.
#[derive(Debug, Clone)]
pub struct ConvergenceResult {
    /// Which objective this panel traces.
    pub objective: Objective,
    /// Per-function traces.
    pub functions: Vec<FunctionTraces>,
}

impl ConvergenceResult {
    /// Renders a per-function table at selected steps.
    pub fn render(&self) -> String {
        let figure = match self.objective {
            Objective::ExecutionTime => "Figure 5 (execution time)",
            _ => "Figure 6 (execution cost)",
        };
        // Costs are ~1e-5 USD: use scientific notation there.
        let fmt = |v: f64| match self.objective {
            Objective::ExecutionTime => fmt_f(v, 4),
            _ => fmt_usd(v),
        };
        let mut out = format!("{figure} — best-found value vs optimization trials\n");
        for f in &self.functions {
            let steps: Vec<usize> = [3, 7, 11, 15, 19]
                .into_iter()
                .filter(|&s| s < f.traces[0].mean_by_step.len())
                .collect();
            let mut headers = vec!["variant".to_string()];
            headers.extend(steps.iter().map(|s| format!("trial {}", s + 1)));
            headers.push("gap".to_string());
            let mut t = TextTable::new(headers);
            for trace in &f.traces {
                let mut row = vec![trace.variant.to_string()];
                for &s in &steps {
                    row.push(format!(
                        "{}±{}",
                        fmt(trace.mean_by_step[s]),
                        fmt(trace.ci_by_step[s])
                    ));
                }
                let gap = self
                    .functions
                    .iter()
                    .find(|x| x.function == f.function)
                    .and_then(|x| x.final_gap(trace.variant))
                    .unwrap_or(f64::NAN);
                row.push(format!("{}%", fmt_f(gap * 100.0, 1)));
                t.row(row);
            }
            out.push_str(&format!(
                "\n{} (optimum {}):\n{}",
                f.function,
                fmt(f.optimum),
                t.render()
            ));
        }
        out
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let name = match self.objective {
            Objective::ExecutionTime => "fig05_convergence_et.csv",
            _ => "fig06_convergence_ec.csv",
        };
        let mut t = TextTable::new(vec![
            "function",
            "variant",
            "trial",
            "mean_best",
            "ci95",
            "optimum",
        ]);
        for f in &self.functions {
            for trace in &f.traces {
                for (step, (m, ci)) in trace.mean_by_step.iter().zip(&trace.ci_by_step).enumerate()
                {
                    t.row(vec![
                        f.function.to_string(),
                        trace.variant.to_string(),
                        (step + 1).to_string(),
                        m.to_string(),
                        ci.to_string(),
                        f.optimum.to_string(),
                    ]);
                }
            }
        }
        t.write_csv(name)
    }
}

/// Runs the experiment for one objective (Fig. 5 = ET, Fig. 6 = EC).
pub fn run(opts: &ExperimentOpts, objective: Objective) -> freedom::Result<ConvergenceResult> {
    let space = SearchSpace::table1();
    let functions = par_map(opts, &FunctionKind::ALL, |&kind| {
        let table = ground_truth_default(kind, opts)?;
        let optimum = match objective {
            Objective::ExecutionTime => table.best_by_time().map(|p| p.exec_time_secs),
            _ => table.best_by_cost().map(|p| p.exec_cost_usd),
        }
        .ok_or_else(|| {
            freedom::FreedomError::InsufficientData(format!("no feasible config for {kind}"))
        })?;

        let mut traces = Vec::with_capacity(SurrogateKind::ALL.len());
        for variant in SurrogateKind::ALL {
            // curves[rep][step]; repetitions fan out across cores.
            let curves = par_repeats(opts, |rep| -> freedom::Result<Vec<f64>> {
                let mut evaluator = TableEvaluator::new(&table);
                let run = BayesianOptimizer::new(
                    variant,
                    BoConfig {
                        seed: opts.repeat_seed(rep),
                        budget: opts.budget,
                        surrogate_refit_every: opts.surrogate_refit_every,
                        ..BoConfig::default()
                    },
                )
                .optimize(&space, &mut evaluator, objective)?;
                let mut curve = run.best_value_by_step.clone();
                curve.resize(opts.budget, *curve.last().unwrap_or(&f64::NAN));
                Ok(curve)
            })
            .into_iter()
            .collect::<freedom::Result<Vec<Vec<f64>>>>()?;
            let mut mean_by_step = Vec::with_capacity(opts.budget);
            let mut ci_by_step = Vec::with_capacity(opts.budget);
            for step in 0..opts.budget {
                let vals: Vec<f64> = curves
                    .iter()
                    .map(|c| c[step])
                    .filter(|v| v.is_finite())
                    .collect();
                mean_by_step.push(stats::mean(&vals).unwrap_or(f64::NAN));
                ci_by_step.push(stats::ci95_half_width(&vals).unwrap_or(0.0));
            }
            traces.push(Trace {
                variant,
                mean_by_step,
                ci_by_step,
            });
        }
        Ok(FunctionTraces {
            function: kind,
            optimum,
            traces,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(ConvergenceResult {
        objective,
        functions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_and_converge() {
        let result = run(&ExperimentOpts::fast(), Objective::ExecutionTime).unwrap();
        assert_eq!(result.functions.len(), 6);
        for f in &result.functions {
            assert_eq!(f.traces.len(), 4);
            for trace in &f.traces {
                for w in trace.mean_by_step.windows(2) {
                    assert!(
                        w[1] <= w[0] + 1e-9,
                        "{} {}: curve rose",
                        f.function,
                        trace.variant
                    );
                }
                // Everything ends at or above the optimum.
                let last = *trace.mean_by_step.last().unwrap();
                assert!(last >= f.optimum * 0.999);
            }
            // GP ends within a sane multiple of the optimum even in fast mode.
            let gp_gap = f.final_gap(SurrogateKind::Gp).unwrap();
            assert!(gp_gap < 1.0, "{}: GP gap {gp_gap}", f.function);
        }
        assert!(result.render().contains("Figure 5"));
    }
}

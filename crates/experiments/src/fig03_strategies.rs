//! Figure 3: the best execution time and cost achievable inside each
//! allocation strategy's search space, normalized to Decoupled's best.
//!
//! Paper headlines: Decoupled gives 5–40% better ET than Decoupled (m5)
//! and Prop. CPU; Decoupled (m5) gives 10–50% better EC than Prop. CPU;
//! Fixed CPU costs transcode/ocr 2–3× in ET and s3 ~2.6× in EC.

use freedom::strategies::{best_within_strategy, AllocationStrategy, StrategyBest};
use freedom_workloads::FunctionKind;

use crate::context::{par_map, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// One function's normalized per-strategy bests.
#[derive(Debug, Clone)]
pub struct FunctionStrategies {
    /// Function measured.
    pub function: FunctionKind,
    /// Raw per-strategy bests (strategy order = [`AllocationStrategy::ALL`]).
    pub bests: Vec<StrategyBest>,
    /// Best ET per strategy ÷ Decoupled's best ET.
    pub norm_best_et: Vec<f64>,
    /// Best EC per strategy ÷ Decoupled's best EC.
    pub norm_best_ec: Vec<f64>,
}

/// The full Figure 3 dataset.
#[derive(Debug, Clone)]
pub struct Fig03Result {
    /// Per-function rows.
    pub functions: Vec<FunctionStrategies>,
}

impl Fig03Result {
    /// Renders both panels (a: ET, b: EC).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, pick) in [
            ("(a) Norm. best execution time", true),
            ("(b) Norm. best execution cost", false),
        ] {
            let mut t = TextTable::new(vec![
                "function".to_string(),
                AllocationStrategy::Decoupled.to_string(),
                AllocationStrategy::DecoupledM5.to_string(),
                AllocationStrategy::PropCpu.to_string(),
                AllocationStrategy::FixedCpu.to_string(),
            ]);
            for f in &self.functions {
                let series = if pick {
                    &f.norm_best_et
                } else {
                    &f.norm_best_ec
                };
                // ALL order: [FixedCpu, PropCpu, DecoupledM5, Decoupled];
                // display order is the reverse.
                t.row(vec![
                    f.function.to_string(),
                    fmt_f(series[3], 2),
                    fmt_f(series[2], 2),
                    fmt_f(series[1], 2),
                    fmt_f(series[0], 2),
                ]);
            }
            out.push_str(&format!("Figure 3 {title}\n{}\n", t.render()));
        }
        out
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec!["function", "strategy", "norm_best_et", "norm_best_ec"]);
        for f in &self.functions {
            for (i, strategy) in AllocationStrategy::ALL.iter().enumerate() {
                t.row(vec![
                    f.function.to_string(),
                    strategy.to_string(),
                    f.norm_best_et[i].to_string(),
                    f.norm_best_ec[i].to_string(),
                ]);
            }
        }
        t.write_csv("fig03_strategies.csv")
    }
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<Fig03Result> {
    let functions = par_map(opts, &FunctionKind::ALL, |&kind| {
        let input = kind.default_input();
        // The five strategy sweeps are independent; fan them out too.
        let bests: Vec<StrategyBest> = par_map(opts, &AllocationStrategy::ALL, |&s| {
            best_within_strategy(s, kind, &input, opts.gt_reps, opts.seed)
        })
        .into_iter()
        .collect::<freedom::Result<_>>()?;
        let decoupled = bests[3];
        let norm_best_et = bests
            .iter()
            .map(|b| b.best_exec_time_secs / decoupled.best_exec_time_secs)
            .collect();
        let norm_best_ec = bests
            .iter()
            .map(|b| b.best_exec_cost_usd / decoupled.best_exec_cost_usd)
            .collect();
        Ok(FunctionStrategies {
            function: kind,
            bests,
            norm_best_et,
            norm_best_ec,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(Fig03Result { functions })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_ordering_matches_the_paper() {
        let result = run(&ExperimentOpts::fast()).unwrap();
        assert_eq!(result.functions.len(), 6);
        for f in &result.functions {
            // Decoupled is the normalization base.
            assert!((f.norm_best_et[3] - 1.0).abs() < 1e-9);
            assert!((f.norm_best_ec[3] - 1.0).abs() < 1e-9);
            // No strategy can beat the superset space (ET).
            for &v in &f.norm_best_et {
                assert!(v >= 1.0 - 0.05, "{}: {v}", f.function);
            }
        }
        // Fixed CPU hurts the parallel functions' ET by ~2x or more.
        let transcode = &result.functions[0];
        assert!(
            transcode.norm_best_et[0] > 1.8,
            "{}",
            transcode.norm_best_et[0]
        );
        let ocr = &result.functions[3];
        assert!(ocr.norm_best_et[0] > 1.5, "{}", ocr.norm_best_et[0]);
        // Decoupling beats proportional coupling on cost for several
        // functions (paper: 10-50%).
        let better = result
            .functions
            .iter()
            .filter(|f| f.norm_best_ec[1] > f.norm_best_ec[2] * 1.05)
            .count();
        assert!(better >= 3, "only {better} functions benefit");
        // Instance-type choice helps ET for CPU-bound functions
        // (Decoupled(m5) is 5-40% worse than Decoupled).
        let arch_gain = result
            .functions
            .iter()
            .filter(|f| f.norm_best_et[2] >= 1.05 && f.norm_best_et[2] <= 1.45)
            .count();
        assert!(
            arch_gain >= 4,
            "only {arch_gain} functions show family gains"
        );
        assert!(result.render().contains("Figure 3"));
    }
}

//! Runs the closed-loop control-plane sweep (feedback admission +
//! online right-sizing) and writes its CSV artifact.

use freedom_experiments as exp;

fn main() {
    let opts = exp::ExperimentOpts::from_args();
    let result = exp::fleet_control_loop::run(&opts).expect("fleet control loop");
    println!("{}", result.render());
    // Diagnostics go to stderr: the digests carry sampled wall timings
    // and engine-dependent effort counters, while stdout must stay
    // byte-identical across thread counts.
    eprintln!("\nper-cell telemetry (counters from the live recorder):");
    for r in &result.rows {
        eprintln!(
            "  {}/{}/{}: {}",
            r.source, r.tightness, r.controller, r.telemetry
        );
    }
    match result.write_csv() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Runs the closed-loop control-plane sweep (feedback admission +
//! online right-sizing) and writes its CSV artifact.

use freedom_experiments as exp;

fn main() {
    let opts = exp::ExperimentOpts::from_args();
    let result = exp::fleet_control_loop::run(&opts).expect("fleet control loop");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Regenerates Figure 8 (online-optimization violations per method).

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result =
        freedom_experiments::fig08_online_violations::run(&opts).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

//! Regenerates Figure 9 (MAPE over the whole space per BO variant).

use freedom_experiments::fig09_mape::{run, Scenario};

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = run(&opts, Scenario::WholeSpace).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

//! Regenerates Figure 7 (generic vs data-specific vs ideal per input).

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = freedom_experiments::fig07_input_specific::run(&opts).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

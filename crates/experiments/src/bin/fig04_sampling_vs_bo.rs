//! Regenerates Figure 4 (Random vs LHS vs BO-GP after 20 trials).

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = freedom_experiments::fig04_sampling_vs_bo::run(&opts).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

//! Regenerates Figure 6 (execution-cost convergence of the BO variants).

use freedom_optimizer::Objective;

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = freedom_experiments::fig05_convergence::run(&opts, Objective::ExecutionCost)
        .expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

//! Crash-resumable streaming fleet replay over the faulted three-zone
//! market: snapshots the replay at every epoch boundary, optionally
//! "crashes" at a chosen epoch, and resumes from the persisted snapshot.
//!
//! The scenario (fleet, trace, market, faults) is a pure function of the
//! shared experiment flags, so a killed run and its resumed continuation
//! reproduce the uninterrupted report bit for bit:
//!
//! ```text
//! fleet_replay --fast --kill-epoch 4        # dies at epoch 4, leaves a snapshot
//! fleet_replay --fast --resume              # finishes from the snapshot
//! ```
//!
//! Flags on top of the shared experiment set (`--fast`, `--seed N`,
//! `--threads N`): `--snapshot PATH` (default `target/fleet_replay.snap`),
//! `--snapshot-secs N` (epoch length, default 60), `--kill-epoch N`
//! (abort once the boundary of epoch N is reached), `--resume` (load the
//! snapshot and continue instead of starting fresh), `--telemetry PATH`
//! (per-epoch JSONL metric snapshots), `--trace-json PATH`
//! (Perfetto-loadable Chrome trace). Either telemetry flag also prints
//! the terminal summary; the report is bit-identical either way.

use freedom::fleet::{
    ControlConfig, ControllerConfig, FleetConfig, FleetReport, FleetSimulator, PidConfig,
    PlacementStrategy, StreamTrace, Telemetry, TraceSource,
};
use freedom::market::MarketConfig;
use freedom::snapshot::ReplaySnapshot;
use freedom_experiments as exp;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn summarize(report: &FleetReport) {
    println!(
        "invocations {}  cost ${:.4}  spot share {:.1}%  p95 inflation {:.3}",
        report.invocations,
        report.total_cost_usd,
        report.spot_share() * 100.0,
        report.p95_latency_inflation,
    );
    println!(
        "failure domain: notified {}  drained {}  migrated {}  demoted {}  rejected {}",
        report.notified, report.drained, report.migrated, report.spot_demoted, report.rejected,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = exp::ExperimentOpts::from_args();
    let snapshot_path =
        flag_value(&args, "--snapshot").unwrap_or_else(|| "target/fleet_replay.snap".to_string());
    let snapshot_secs: f64 = flag_value(&args, "--snapshot-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);
    let kill_epoch: Option<u64> = flag_value(&args, "--kill-epoch").and_then(|v| v.parse().ok());
    let resume = args.iter().any(|a| a == "--resume");
    let telemetry_path = flag_value(&args, "--telemetry");
    let trace_json_path = flag_value(&args, "--trace-json");

    // The fixed scenario: the cheap synthetic fleet over a heavy-tail
    // trace on the tight three-zone market under the stormy fault plan.
    let (duration_secs, n_functions) = exp::fleet_simulation::fleet_scale(&opts);
    let duration_secs = if opts.opt_repeats <= 2 {
        duration_secs * 5.0
    } else {
        duration_secs
    };
    let threads = opts.effective_threads();
    let plans =
        exp::fleet_simulation::synthetic_plans(n_functions, 4).expect("synthetic fleet plans");
    let sim = FleetSimulator::new(plans).expect("fleet simulator");
    let trace = StreamTrace::generate_sharded(
        TraceSource::HeavyTail {
            mean_rps: 0.5,
            alpha: 1.5,
        },
        n_functions,
        duration_secs,
        opts.seed,
        threads,
    )
    .expect("trace generation");
    let tight = exp::fleet_simulation::market_tightness()[2];
    let stormy = exp::fleet_zone_outage::fault_presets()[2];
    let config = FleetConfig {
        market: MarketConfig {
            zones: exp::fleet_zone_outage::zone_layout(),
            ..exp::fleet_simulation::market_config(&tight, freedom::fleet::AdmissionPolicy::Greedy)
        },
        control: ControlConfig {
            cadence_secs: 20.0,
            controller: ControllerConfig::HeadroomPid(PidConfig::default()),
        },
        faults: stormy.plan,
        ..FleetConfig::default()
    };

    let resume_from = if resume {
        match ReplaySnapshot::read_from(&snapshot_path) {
            Ok(snap) => {
                println!(
                    "resuming from {snapshot_path}: epoch {}, {} events consumed",
                    snap.epoch(),
                    snap.events_consumed()
                );
                Some(snap)
            }
            Err(e) => {
                eprintln!("cannot resume from {snapshot_path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let outcome = if telemetry_path.is_some() || trace_json_path.is_some() {
        let mut tel = Telemetry::new();
        trace.record_scan(&mut tel);
        let epoch_nanos = (snapshot_secs * 1e9) as u64;
        let mut jsonl = String::new();
        let out = sim.run_stream_resumable_traced(
            &trace,
            PlacementStrategy::IdleAware,
            &config,
            snapshot_secs,
            resume_from.as_ref(),
            &mut tel,
            |snap, rec| {
                snap.write_to(&snapshot_path)?;
                rec.jsonl_snapshot(
                    snap.epoch(),
                    snap.epoch().saturating_mul(epoch_nanos),
                    &mut jsonl,
                );
                if let Some(kill) = kill_epoch {
                    if snap.epoch() >= kill {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
        );
        if let Some(path) = &telemetry_path {
            std::fs::write(path, &jsonl).expect("write telemetry JSONL");
            println!("telemetry: per-epoch JSONL -> {path}");
        }
        if let Some(path) = &trace_json_path {
            tel.write_chrome_trace(std::path::Path::new(path))
                .expect("write Chrome trace JSON");
            println!("telemetry: Chrome trace -> {path} (open in Perfetto or chrome://tracing)");
        }
        println!("{}", tel.summary());
        out
    } else {
        sim.run_stream_resumable(
            &trace,
            PlacementStrategy::IdleAware,
            &config,
            snapshot_secs,
            resume_from.as_ref(),
            |snap| {
                snap.write_to(&snapshot_path)?;
                if let Some(kill) = kill_epoch {
                    if snap.epoch() >= kill {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
        )
    };
    match outcome {
        Ok(Some(report)) => {
            println!(
                "replay complete: {n_functions} functions, {duration_secs}s trace, \
                 {snapshot_secs}s epochs"
            );
            summarize(&report);
        }
        Ok(None) => {
            println!(
                "killed at epoch {} — snapshot persisted to {snapshot_path}; \
                 rerun with --resume to finish",
                kill_epoch.unwrap_or(0)
            );
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Runs the DESIGN.md §6 ablation study (quality side; timing lives in
//! the `ablations` Criterion bench).

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = freedom_experiments::ablation_study::run(&opts).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

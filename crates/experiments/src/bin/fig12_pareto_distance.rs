//! Regenerates Figure 12 (predicted-vs-actual Pareto-front distance).

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = freedom_experiments::fig12_pareto_distance::run(&opts).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

//! Runs the retry-storm sweep (transient faults × retry policies over
//! the tight spot market) and writes its CSV artifact. Exits non-zero
//! if the mid-storm kill/resume chaos check diverged, so CI can pin
//! crash-resumability under retry load.

use freedom_experiments as exp;

fn main() {
    let opts = exp::ExperimentOpts::from_args();
    let result = exp::fleet_retry_storm::run(&opts).expect("fleet retry storm");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    assert!(
        result.resume_bit_identical(),
        "mid-storm kill/resume diverged: {:?}",
        result.resume_checks
    );
}

//! Regenerates Table 3 (alternative instance families within theta).

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = freedom_experiments::table3_alternatives::run(&opts).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

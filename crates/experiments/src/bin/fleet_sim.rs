//! Runs the fleet-level provider simulation (extension of Figure 15).

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = freedom_experiments::fleet_simulation::run(&opts).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

//! Runs every experiment in paper order and writes all CSV artifacts.
//!
//! Pass `--fast` for a quick smoke run; default settings mirror the paper
//! (5 ground-truth repetitions, 10 optimization repeats, 20-trial budget).

use freedom_experiments as exp;
use freedom_optimizer::Objective;

fn main() {
    let opts = exp::ExperimentOpts::from_args();
    println!("== running all experiments with {opts:?} ==\n");

    let fig01 = exp::fig01_config_spread::run(&opts).expect("fig01");
    println!("{}", fig01.render());
    let _ = fig01.write_csv();

    let fig03 = exp::fig03_strategies::run(&opts).expect("fig03");
    println!("{}", fig03.render());
    let _ = fig03.write_csv();

    let table3 = exp::table3_alternatives::run(&opts).expect("table3");
    println!("{}", table3.render());
    let _ = table3.write_csv();

    let fig04 = exp::fig04_sampling_vs_bo::run(&opts).expect("fig04");
    println!("{}", fig04.render());
    let _ = fig04.write_csv();

    let fig05 = exp::fig05_convergence::run(&opts, Objective::ExecutionTime).expect("fig05");
    println!("{}", fig05.render());
    let _ = fig05.write_csv();

    let fig06 = exp::fig05_convergence::run(&opts, Objective::ExecutionCost).expect("fig06");
    println!("{}", fig06.render());
    let _ = fig06.write_csv();

    let fig07 = exp::fig07_input_specific::run(&opts).expect("fig07");
    println!("{}", fig07.render());
    let _ = fig07.write_csv();

    let fig08 = exp::fig08_online_violations::run(&opts).expect("fig08");
    println!("{}", fig08.render());
    let _ = fig08.write_csv();

    let fig09 = exp::fig09_mape::run(&opts, exp::fig09_mape::Scenario::WholeSpace).expect("fig09");
    println!("{}", fig09.render());
    let _ = fig09.write_csv();

    let fig10 =
        exp::fig09_mape::run(&opts, exp::fig09_mape::Scenario::PerFamilyBest).expect("fig10");
    println!("{}", fig10.render());
    let _ = fig10.write_csv();

    let fig12 = exp::fig12_pareto_distance::run(&opts).expect("fig12");
    println!("{}", fig12.render());
    let _ = fig12.write_csv();

    let fig13 = exp::fig13_weighted_mo::run(&opts).expect("fig13");
    println!("{}", fig13.render());
    let _ = fig13.write_csv();

    let fig14 = exp::fig14_hierarchical::run(&opts).expect("fig14");
    println!("{}", fig14.render());
    let _ = fig14.write_csv();

    let fig15 = exp::fig15_provider_savings::run(&opts).expect("fig15");
    println!("{}", fig15.render());
    let _ = fig15.write_csv();

    println!(
        "== all experiments complete; CSVs in {} ==",
        exp::report::results_dir().display()
    );
}

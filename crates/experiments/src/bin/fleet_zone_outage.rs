//! Runs the failure-domain sweep (zone outages × controllers over the
//! three-zone noticed market) and writes its CSV artifact.

use freedom_experiments as exp;

fn main() {
    let opts = exp::ExperimentOpts::from_args();
    let result = exp::fleet_zone_outage::run(&opts).expect("fleet zone outage");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Runs the failure-domain sweep (zone outages × controllers over the
//! three-zone noticed market) and writes its CSV artifact.

use freedom_experiments as exp;

fn main() {
    let opts = exp::ExperimentOpts::from_args();
    let result = exp::fleet_zone_outage::run(&opts).expect("fleet zone outage");
    println!("{}", result.render());
    // Diagnostics go to stderr: the digests carry sampled wall timings
    // and engine-dependent effort counters, while stdout must stay
    // byte-identical across thread counts.
    eprintln!("\nper-cell telemetry (counters from the live recorder):");
    for r in &result.rows {
        eprintln!("  {}/{}: {}", r.faults, r.controller, r.telemetry);
    }
    match result.write_csv() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Regenerates Figure 1 (configuration-space ET/EC spread).

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = freedom_experiments::fig01_config_spread::run(&opts).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

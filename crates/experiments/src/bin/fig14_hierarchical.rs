//! Regenerates Figure 14 (hierarchical multi-objective optimization).

fn main() {
    let opts = freedom_experiments::ExperimentOpts::from_args();
    let result = freedom_experiments::fig14_hierarchical::run(&opts).expect("experiment failed");
    println!("{}", result.render());
    match result.write_csv() {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}

//! Week-scale crash-resumable replay over multi-file gzip'd trace days:
//! synthesizes one `.csv.gz` per simulated day (14 days × 10 000
//! functions by default), streams the whole set through the fleet
//! simulator without materializing it, and snapshots at epoch
//! boundaries so a killed run resumes bit-identically.
//!
//! ```text
//! fleet_week_replay --fast                    # downscaled 2-day replay
//! fleet_week_replay --fast --kill-epoch 2     # dies at epoch 2, leaves a snapshot
//! fleet_week_replay --fast --resume           # finishes from the snapshot
//! fleet_week_replay --fast --verify           # uninterrupted vs kill+resume bit-compare
//! ```
//!
//! Flags on top of the shared experiment set (`--fast`, `--threads N`):
//! `--days N` / `--functions N` (trace shape; default 14 × 10 000, or
//! 2 × 2 000 under `--fast`), `--out-dir PATH` (where the day files are
//! written, default `target/week_trace`), `--snapshot PATH`,
//! `--snapshot-secs N` (epoch length, default 21600 = 6 h),
//! `--kill-epoch N`, `--resume`, `--verify`, `--telemetry PATH`
//! (per-epoch JSONL metric snapshots), `--trace-json PATH`
//! (Perfetto-loadable Chrome trace of sim-time and wall-time spans).
//! Either telemetry flag also prints the terminal summary; the replay
//! report is bit-identical with telemetry on or off.

use std::time::Instant;

use freedom::fleet::{
    AdmissionPolicy, ControlConfig, ControllerConfig, FleetConfig, FleetReport, FleetSimulator,
    PidConfig, PlacementStrategy, StreamTrace, Telemetry,
};
use freedom::snapshot::ReplaySnapshot;
use freedom_experiments as exp;
use freedom_experiments::week_trace::WeekTraceSpec;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn summarize(report: &FleetReport) {
    println!(
        "invocations {}  cost ${:.4}  spot share {:.1}%  p95 inflation {:.3}",
        report.invocations,
        report.total_cost_usd,
        report.spot_share() * 100.0,
        report.p95_latency_inflation,
    );
    println!(
        "failure domain: notified {}  drained {}  migrated {}  demoted {}  rejected {}",
        report.notified, report.drained, report.migrated, report.spot_demoted, report.rejected,
    );
}

fn scenario(functions: u32) -> (FleetSimulator, FleetConfig) {
    let plans =
        exp::fleet_simulation::synthetic_plans(functions as usize, 4).expect("synthetic plans");
    let sim = FleetSimulator::new(plans).expect("fleet simulator");
    // The week_replay bench scenario: the scarce, volatile market
    // preset where demotions and admission control actually bite.
    let tightness = exp::fleet_simulation::market_tightness()[2];
    let config = FleetConfig {
        market: exp::fleet_simulation::market_config(&tightness, AdmissionPolicy::Greedy),
        control: ControlConfig {
            cadence_secs: 30.0,
            controller: ControllerConfig::HeadroomPid(PidConfig::default()),
        },
        ..FleetConfig::default()
    };
    (sim, config)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = exp::ExperimentOpts::from_args();
    let fast = opts.opt_repeats <= 2;
    let base = if fast {
        WeekTraceSpec::downscaled()
    } else {
        WeekTraceSpec::headline()
    };
    let spec = WeekTraceSpec {
        days: flag_value(&args, "--days")
            .and_then(|v| v.parse().ok())
            .unwrap_or(base.days),
        functions: flag_value(&args, "--functions")
            .and_then(|v| v.parse().ok())
            .unwrap_or(base.functions),
        ..base
    };
    let out_dir = flag_value(&args, "--out-dir").unwrap_or_else(|| "target/week_trace".to_string());
    let snapshot_path =
        flag_value(&args, "--snapshot").unwrap_or_else(|| format!("{out_dir}/week_replay.snap"));
    let snapshot_secs: f64 = flag_value(&args, "--snapshot-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(21_600.0);
    let kill_epoch: Option<u64> = flag_value(&args, "--kill-epoch").and_then(|v| v.parse().ok());
    let resume = args.iter().any(|a| a == "--resume");
    let verify = args.iter().any(|a| a == "--verify");
    let telemetry_path = flag_value(&args, "--telemetry");
    let trace_json_path = flag_value(&args, "--trace-json");
    let threads = opts.effective_threads();

    let synth_start = Instant::now();
    let paths = spec
        .write_day_files(std::path::Path::new(&out_dir), threads)
        .expect("write day files");
    let gz_bytes: u64 = paths
        .iter()
        .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    println!(
        "trace {}: {} gz day files, {:.1} MiB compressed, synthesized in {:.1}s",
        spec.tag(),
        paths.len(),
        gz_bytes as f64 / (1 << 20) as f64,
        synth_start.elapsed().as_secs_f64(),
    );

    let scan_start = Instant::now();
    let trace = StreamTrace::from_csv_files(&paths).expect("scan day files");
    println!(
        "scanned {} events / {} functions / {:.1} simulated days in {:.1}s",
        trace.len(),
        trace.n_functions(),
        trace.horizon_nanos() as f64 / 86_400e9,
        scan_start.elapsed().as_secs_f64(),
    );

    let (sim, config) = scenario(spec.functions);

    if verify {
        let kill = kill_epoch.unwrap_or(2);
        let baseline = sim
            .run_stream(&trace, PlacementStrategy::IdleAware, &config)
            .expect("uninterrupted replay");
        let killed = sim
            .run_stream_resumable(
                &trace,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                None,
                |snap| {
                    snap.write_to(&snapshot_path)?;
                    Ok(snap.epoch() < kill)
                },
            )
            .expect("killed replay");
        assert!(killed.is_none(), "kill epoch {kill} past end of trace");
        let snap = ReplaySnapshot::read_from(&snapshot_path).expect("read snapshot");
        println!(
            "killed at epoch {} with {} events consumed; resuming",
            snap.epoch(),
            snap.events_consumed()
        );
        let resumed = sim
            .run_stream_resumable(
                &trace,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                Some(&snap),
                |_| Ok(true),
            )
            .expect("resumed replay")
            .expect("resumed replay reached the end");
        if format!("{baseline:?}") != format!("{resumed:?}") {
            eprintln!("MISMATCH: kill+resume diverged from the uninterrupted replay");
            eprintln!("uninterrupted: {baseline:?}");
            eprintln!("kill+resume:   {resumed:?}");
            std::process::exit(1);
        }
        println!("verify ok: kill+resume over gz day files ≡ uninterrupted replay");
        summarize(&baseline);
        return;
    }

    let resume_from = if resume {
        match ReplaySnapshot::read_from(&snapshot_path) {
            Ok(snap) => {
                println!(
                    "resuming from {snapshot_path}: epoch {}, {} events consumed",
                    snap.epoch(),
                    snap.events_consumed()
                );
                Some(snap)
            }
            Err(e) => {
                eprintln!("cannot resume from {snapshot_path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let replay_start = Instant::now();
    let outcome = if telemetry_path.is_some() || trace_json_path.is_some() {
        let mut tel = Telemetry::new();
        trace.record_scan(&mut tel);
        let epoch_nanos = (snapshot_secs * 1e9) as u64;
        let mut jsonl = String::new();
        let out = sim.run_stream_resumable_traced(
            &trace,
            PlacementStrategy::IdleAware,
            &config,
            snapshot_secs,
            resume_from.as_ref(),
            &mut tel,
            |snap, rec| {
                snap.write_to(&snapshot_path)?;
                rec.jsonl_snapshot(
                    snap.epoch(),
                    snap.epoch().saturating_mul(epoch_nanos),
                    &mut jsonl,
                );
                if let Some(kill) = kill_epoch {
                    if snap.epoch() >= kill {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
        );
        if let Some(path) = &telemetry_path {
            std::fs::write(path, &jsonl).expect("write telemetry JSONL");
            println!("telemetry: per-epoch JSONL -> {path}");
        }
        if let Some(path) = &trace_json_path {
            tel.write_chrome_trace(std::path::Path::new(path))
                .expect("write Chrome trace JSON");
            println!("telemetry: Chrome trace -> {path} (open in Perfetto or chrome://tracing)");
        }
        println!("{}", tel.summary());
        out
    } else {
        sim.run_stream_resumable(
            &trace,
            PlacementStrategy::IdleAware,
            &config,
            snapshot_secs,
            resume_from.as_ref(),
            |snap| {
                snap.write_to(&snapshot_path)?;
                if let Some(kill) = kill_epoch {
                    if snap.epoch() >= kill {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
        )
    };
    let wall = replay_start.elapsed().as_secs_f64();
    match outcome {
        Ok(Some(report)) => {
            let events = trace.len() as f64;
            println!(
                "replay complete in {wall:.1}s: {:.0} events/sec, {:.0} ns/event, \
                 {:.1} MB/s decompressed",
                events / wall,
                wall * 1e9 / events,
                gz_bytes as f64 / 1e6 / wall,
            );
            summarize(&report);
        }
        Ok(None) => {
            println!(
                "killed at epoch {} — snapshot persisted to {snapshot_path}; \
                 rerun with --resume to finish",
                kill_epoch.unwrap_or(0)
            );
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Figure 8: average number of violations during online optimization.
//!
//! Online trials are single production invocations; a violation is a trial
//! whose objective lands at ≥1.5× the best configuration's value (§5.4).
//! Compared methods: the four BO variants plus Random and LHS.

use freedom::GatewayEvaluator;
use freedom_faas::{FunctionSpec, Gateway};
use freedom_optimizer::online::average_violations;
use freedom_optimizer::{
    run_sampling, BayesianOptimizer, BoConfig, LatinHypercube, Objective, OptimizationRun,
    RandomSearch, SearchSpace,
};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

use crate::context::{ground_truth_default, par_map, par_repeats, ExperimentOpts};
use crate::report::{fmt_f, TextTable};

/// Method labels in presentation order (BO variants then samplers).
pub const METHODS: [&str; 6] = ["GP", "GBRT", "ET", "RF", "Random", "LHS"];

/// One function's average violations per method.
#[derive(Debug, Clone)]
pub struct ViolationRow {
    /// Function measured.
    pub function: FunctionKind,
    /// Average violations, one per [`METHODS`] entry.
    pub avg_violations: Vec<f64>,
}

/// The full Figure 8 dataset (one panel per objective).
#[derive(Debug, Clone)]
pub struct Fig08Result {
    /// Panel (a): execution time.
    pub time_panel: Vec<ViolationRow>,
    /// Panel (b): execution cost.
    pub cost_panel: Vec<ViolationRow>,
}

impl Fig08Result {
    /// Mean violations of one method across functions in a panel.
    pub fn method_mean(panel: &[ViolationRow], method: &str) -> f64 {
        let idx = METHODS.iter().position(|&m| m == method).unwrap_or(0);
        let total: f64 = panel.iter().map(|r| r.avg_violations[idx]).sum();
        total / panel.len().max(1) as f64
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, panel) in [
            ("(a) Execution time", &self.time_panel),
            ("(b) Execution cost", &self.cost_panel),
        ] {
            let mut headers = vec!["function".to_string()];
            headers.extend(METHODS.iter().map(|m| m.to_string()));
            let mut t = TextTable::new(headers);
            for r in panel {
                let mut row = vec![r.function.to_string()];
                row.extend(r.avg_violations.iter().map(|v| fmt_f(*v, 1)));
                t.row(row);
            }
            out.push_str(&format!(
                "Figure 8 {title} — avg violations\n{}\n",
                t.render()
            ));
        }
        out
    }

    /// Writes the CSV artifact.
    pub fn write_csv(&self) -> std::io::Result<std::path::PathBuf> {
        let mut t = TextTable::new(vec!["objective", "function", "method", "avg_violations"]);
        for (obj, panel) in [("ET", &self.time_panel), ("EC", &self.cost_panel)] {
            for r in panel {
                for (m, v) in METHODS.iter().zip(&r.avg_violations) {
                    t.row(vec![
                        obj.to_string(),
                        r.function.to_string(),
                        m.to_string(),
                        v.to_string(),
                    ]);
                }
            }
        }
        t.write_csv("fig08_online_violations.csv")
    }
}

/// Builds a live single-invocation evaluator (online trials).
fn online_evaluator(kind: FunctionKind, seed: u64) -> freedom::Result<GatewayEvaluator> {
    let mut gateway = Gateway::new(seed)?;
    let initial = SearchSpace::table1().configs()[0];
    gateway.deploy(FunctionSpec::new(kind.name(), kind), initial)?;
    Ok(GatewayEvaluator::new(
        gateway,
        kind.name(),
        kind.default_input(),
        1,
    ))
}

fn run_panel(opts: &ExperimentOpts, objective: Objective) -> freedom::Result<Vec<ViolationRow>> {
    let space = SearchSpace::table1();
    let panel = par_map(opts, &FunctionKind::ALL, |&kind| {
        let table = ground_truth_default(kind, opts)?;
        let best_in_space = match objective {
            Objective::ExecutionTime => table.best_by_time().map(|p| p.exec_time_secs),
            _ => table.best_by_cost().map(|p| p.exec_cost_usd),
        }
        .ok_or_else(|| {
            freedom::FreedomError::InsufficientData(format!("no feasible config for {kind}"))
        })?;

        let mut avg_violations = Vec::with_capacity(METHODS.len());
        for &method in &METHODS {
            let runs: Vec<OptimizationRun> = par_repeats(opts, |rep| {
                let seed = opts.repeat_seed(rep) ^ (method.len() as u64) << 8;
                let mut evaluator = online_evaluator(kind, seed)?;
                let run = match method {
                    "Random" => run_sampling(
                        &mut RandomSearch::new(seed),
                        &space,
                        &mut evaluator,
                        objective,
                        opts.budget,
                    )?,
                    "LHS" => run_sampling(
                        &mut LatinHypercube::new(seed),
                        &space,
                        &mut evaluator,
                        objective,
                        opts.budget,
                    )?,
                    name => {
                        let variant = SurrogateKind::ALL
                            .into_iter()
                            .find(|k| k.name() == name)
                            .expect("method is a surrogate name");
                        BayesianOptimizer::new(
                            variant,
                            BoConfig {
                                seed,
                                budget: opts.budget,
                                surrogate_refit_every: opts.surrogate_refit_every,
                                ..BoConfig::default()
                            },
                        )
                        .optimize(&space, &mut evaluator, objective)?
                    }
                };
                Ok(run)
            })
            .into_iter()
            .collect::<freedom::Result<_>>()?;
            avg_violations.push(average_violations(&runs, best_in_space));
        }
        Ok(ViolationRow {
            function: kind,
            avg_violations,
        })
    })
    .into_iter()
    .collect::<freedom::Result<Vec<_>>>()?;
    Ok(panel)
}

/// Runs the experiment.
pub fn run(opts: &ExperimentOpts) -> freedom::Result<Fig08Result> {
    Ok(Fig08Result {
        time_panel: run_panel(opts, Objective::ExecutionTime)?,
        cost_panel: run_panel(opts, Objective::ExecutionCost)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_counts_are_bounded_and_sane() {
        let opts = ExperimentOpts::fast();
        let result = run(&opts).unwrap();
        for panel in [&result.time_panel, &result.cost_panel] {
            assert_eq!(panel.len(), 6);
            for r in panel {
                assert_eq!(r.avg_violations.len(), 6);
                for &v in &r.avg_violations {
                    assert!(v >= 0.0 && v <= opts.budget as f64, "{}: {v}", r.function);
                }
            }
        }
        assert!(result.render().contains("Figure 8"));
    }
}

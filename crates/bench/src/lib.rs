//! Shared helpers for the Criterion benchmark harness.
//!
//! Every paper table/figure has a bench in `benches/paper_figures.rs`
//! (running the corresponding `freedom-experiments` kernel at reduced
//! repetitions so a full `cargo bench` stays tractable); low-level
//! substrate operations are timed in `benches/microbench.rs`; and the
//! DESIGN.md §6 ablation knobs in `benches/ablations.rs`.

use freedom_experiments::ExperimentOpts;

/// Experiment settings used by the figure benches: one ground-truth rep,
/// one optimization repeat, a reduced budget — the same code paths as the
/// paper-scale runs at a fraction of the work, so bench timings reflect
/// kernel cost rather than repetition count.
pub fn bench_opts() -> ExperimentOpts {
    ExperimentOpts {
        gt_reps: 1,
        opt_repeats: 1,
        budget: 10,
        seed: 42,
        ..ExperimentOpts::fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_opts_are_cheap() {
        let o = bench_opts();
        assert_eq!(o.gt_reps, 1);
        assert_eq!(o.opt_repeats, 1);
        assert!(o.budget <= 10);
    }
}

//! Shared helpers for the Criterion benchmark harness.
//!
//! Every paper table/figure has a bench in `benches/paper_figures.rs`
//! (running the corresponding `freedom-experiments` kernel at reduced
//! repetitions so a full `cargo bench` stays tractable); low-level
//! substrate operations are timed in `benches/microbench.rs`; and the
//! DESIGN.md §6 ablation knobs in `benches/ablations.rs`.

use freedom_experiments::ExperimentOpts;

/// Experiment settings used by the figure benches: one ground-truth rep,
/// one optimization repeat, a reduced budget — the same code paths as the
/// paper-scale runs at a fraction of the work, so bench timings reflect
/// kernel cost rather than repetition count.
pub fn bench_opts() -> ExperimentOpts {
    ExperimentOpts {
        gt_reps: 1,
        opt_repeats: 1,
        budget: 10,
        seed: 42,
        ..ExperimentOpts::fast()
    }
}

/// Reports a non-timing metric (a counter, a rate) into the same
/// `$BENCH_JSON` lines file the criterion shim appends to, so CI's
/// `BENCH_pr.json` artifact carries it next to the wall-clock rows —
/// e.g. the `streaming_replay` group's peak-events-resident counter.
/// No-op when `BENCH_JSON` is unset.
pub fn report_counter(bench: &str, value: f64, unit: &str) {
    use std::io::Write as _;
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if !value.is_finite() {
        eprintln!("freedom-bench: dropping non-finite counter {bench} = {value}");
        return;
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("freedom-bench: cannot open {path}");
        return;
    };
    // Minimal JSON string hygiene, matching the criterion shim's rows:
    // strip the two characters that could break a line-parsing consumer.
    let clean = |s: &str| s.replace(['"', '\\'], "'");
    let _ = writeln!(
        file,
        "{{\"bench\":\"{}\",\"counter\":{value},\"unit\":\"{}\"}}",
        clean(bench),
        clean(unit),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_lines_append_to_bench_json() {
        let path = std::env::temp_dir().join(format!("bench_json_{}", std::process::id()));
        std::fs::remove_file(&path).ok(); // append mode: start clean
        let prior = std::env::var("BENCH_JSON").ok();
        std::env::set_var("BENCH_JSON", &path);
        report_counter("group/metric", 42.5, "events");
        report_counter("group/broken", f64::NAN, "events"); // dropped, not written
        match prior {
            Some(v) => std::env::set_var("BENCH_JSON", v),
            None => std::env::remove_var("BENCH_JSON"),
        }
        let line = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            line.trim(),
            "{\"bench\":\"group/metric\",\"counter\":42.5,\"unit\":\"events\"}"
        );
    }

    #[test]
    fn bench_opts_are_cheap() {
        let o = bench_opts();
        assert_eq!(o.gt_reps, 1);
        assert_eq!(o.opt_repeats, 1);
        assert!(o.budget <= 10);
    }
}

//! One Criterion bench per paper table/figure.
//!
//! Each bench runs the corresponding `freedom-experiments` kernel at
//! reduced repetitions (see [`freedom_bench::bench_opts`]), so `cargo
//! bench` exercises every experiment end-to-end and tracks regressions in
//! the kernels that regenerate the paper's results.

use criterion::{criterion_group, criterion_main, Criterion};
use freedom_bench::bench_opts;
use freedom_experiments as exp;
use freedom_optimizer::Objective;

fn bench_experiments(c: &mut Criterion) {
    let opts = bench_opts();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);

    group.bench_function("fig01_config_spread", |b| {
        b.iter(|| exp::fig01_config_spread::run(&opts).expect("fig01"))
    });
    group.bench_function("fig03_strategies", |b| {
        b.iter(|| exp::fig03_strategies::run(&opts).expect("fig03"))
    });
    group.bench_function("table3_alternatives", |b| {
        b.iter(|| exp::table3_alternatives::run(&opts).expect("table3"))
    });
    group.bench_function("fig04_sampling_vs_bo", |b| {
        b.iter(|| exp::fig04_sampling_vs_bo::run(&opts).expect("fig04"))
    });
    group.bench_function("fig05_convergence_et", |b| {
        b.iter(|| exp::fig05_convergence::run(&opts, Objective::ExecutionTime).expect("fig05"))
    });
    group.bench_function("fig06_convergence_ec", |b| {
        b.iter(|| exp::fig05_convergence::run(&opts, Objective::ExecutionCost).expect("fig06"))
    });
    group.bench_function("fig07_input_specific", |b| {
        b.iter(|| exp::fig07_input_specific::run(&opts).expect("fig07"))
    });
    group.bench_function("fig08_online_violations", |b| {
        b.iter(|| exp::fig08_online_violations::run(&opts).expect("fig08"))
    });
    group.bench_function("fig09_mape_space", |b| {
        b.iter(|| {
            exp::fig09_mape::run(&opts, exp::fig09_mape::Scenario::WholeSpace).expect("fig09")
        })
    });
    group.bench_function("fig10_mape_per_family", |b| {
        b.iter(|| {
            exp::fig09_mape::run(&opts, exp::fig09_mape::Scenario::PerFamilyBest).expect("fig10")
        })
    });
    group.bench_function("fig12_pareto_distance", |b| {
        b.iter(|| exp::fig12_pareto_distance::run(&opts).expect("fig12"))
    });
    group.bench_function("fig13_weighted_mo", |b| {
        b.iter(|| exp::fig13_weighted_mo::run(&opts).expect("fig13"))
    });
    group.bench_function("fig14_hierarchical", |b| {
        b.iter(|| exp::fig14_hierarchical::run(&opts).expect("fig14"))
    });
    group.bench_function("fig15_provider_savings", |b| {
        b.iter(|| exp::fig15_provider_savings::run(&opts).expect("fig15"))
    });

    group.finish();
}

/// Wall-clock comparison of the whole hot path on a representative slice
/// of the figure suite at `ExperimentOpts::fast`:
///
/// - `fast_suite_naive` — the pre-optimization engine: one thread and a
///   full from-scratch GP hyperparameter search at every BO step
///   (`surrogate_refit_every = 1`);
/// - `fast_suite_sequential` — incremental engine, one thread (the
///   algorithmic win in isolation);
/// - `fast_suite_parallel` — incremental engine fanned across all cores.
///
/// naive / parallel is the headline speedup of this optimization pass.
fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup");
    group.sample_size(3);
    let suite = |opts: &exp::ExperimentOpts| {
        exp::fig04_sampling_vs_bo::run(opts).expect("fig04");
        exp::fig05_convergence::run(opts, Objective::ExecutionTime).expect("fig05");
    };
    let naive = exp::ExperimentOpts {
        surrogate_refit_every: 1,
        ..exp::ExperimentOpts::fast().with_threads(1)
    };
    group.bench_function("fast_suite_naive", |b| b.iter(|| suite(&naive)));
    let sequential = exp::ExperimentOpts::fast().with_threads(1);
    group.bench_function("fast_suite_sequential", |b| b.iter(|| suite(&sequential)));
    let parallel = exp::ExperimentOpts::fast();
    group.bench_function("fast_suite_parallel", |b| b.iter(|| suite(&parallel)));
    group.finish();
}

/// Shared-spot-market replay at Azure-trace scale: an hour-long
/// heavy-tail trace over 120 functions contending for one fluctuating
/// market, replayed with the sequential reference engine and the
/// windowed engine (60 s windows, boundary reconciliation) at 1/4/8
/// workers — bit-identical outputs, see `crates/core/README.md`.
/// `sequential` vs `windowed_8` is the headline fleet-scale speedup; it
/// needs a ≥4-core machine to show up in wall clock, and `windowed_1`
/// tracks the reconciliation overhead the speculation pays on one core.
/// Included in the quick-bench `BENCH_pr.json` artifact like every other
/// bench here, so the perf trajectory records fleet-scale numbers per
/// PR.
fn bench_spot_market(c: &mut Criterion) {
    use exp::fleet_simulation::{market_config, market_tightness, synthetic_plans};
    use freedom::fleet::{
        AdmissionPolicy, FleetConfig, FleetSimulator, PlacementStrategy, TraceSource,
    };

    let mut group = c.benchmark_group("spot_market");
    group.sample_size(10);
    let plans = synthetic_plans(120, 42).expect("fleet fixture");
    let sim = FleetSimulator::new(plans).expect("non-empty fleet");
    let tightness = market_tightness();
    let config = FleetConfig {
        market: market_config(&tightness[1], AdmissionPolicy::Greedy),
        ..FleetConfig::default()
    };
    let trace = TraceSource::HeavyTail {
        mean_rps: 0.5,
        alpha: 1.5,
    }
    .generate_sharded(120, 3600.0, 42, 8)
    .expect("hour-long heavy-tail trace");
    group.bench_function("hour_120fn_sequential", |b| {
        b.iter(|| {
            sim.run(&trace, PlacementStrategy::IdleAware, &config)
                .expect("replay")
        })
    });
    for threads in [1usize, 4, 8] {
        group.bench_function(format!("hour_120fn_windowed_{threads}"), |b| {
            b.iter(|| {
                sim.run_windowed(&trace, PlacementStrategy::IdleAware, &config, threads, 60.0)
                    .expect("replay")
            })
        });
    }
    group.finish();
}

/// The closed control loop at Azure-trace scale: the same hour-long
/// 120-function heavy-tail replay as `spot_market`, but with each
/// controller revising admission and placements at a 20 s cadence —
/// `static` prices the tick machinery itself (observation accumulation
/// and no-op ticks over the open-loop engine), `pid` adds the feedback
/// arithmetic, and `right_sizer` adds the per-function surrogate refits
/// and batched re-planning. `windowed_pid_4` tracks the controller
/// state crossing window boundaries under reconciliation. Feeds the
/// quick-bench `BENCH_pr.json` artifact like every other group here.
fn bench_control_loop(c: &mut Criterion) {
    use exp::fleet_simulation::{market_config, market_tightness, synthetic_plans};
    use freedom::fleet::{
        AdmissionPolicy, ControlConfig, ControllerConfig, FleetConfig, FleetSimulator, PidConfig,
        PlacementStrategy, RightSizerConfig, TraceSource,
    };

    let mut group = c.benchmark_group("control_loop");
    group.sample_size(10);
    let plans = synthetic_plans(120, 42).expect("fleet fixture");
    let sim = FleetSimulator::new(plans).expect("non-empty fleet");
    let tightness = market_tightness();
    let config = |controller| FleetConfig {
        market: market_config(&tightness[1], AdmissionPolicy::Greedy),
        control: ControlConfig {
            cadence_secs: 20.0,
            controller,
        },
        ..FleetConfig::default()
    };
    let trace = TraceSource::HeavyTail {
        mean_rps: 0.5,
        alpha: 1.5,
    }
    .generate_sharded(120, 3600.0, 42, 8)
    .expect("hour-long heavy-tail trace");
    let controllers = [
        ("hour_120fn_static", ControllerConfig::Static),
        (
            "hour_120fn_pid",
            ControllerConfig::HeadroomPid(PidConfig::default()),
        ),
        (
            "hour_120fn_right_sizer",
            ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
        ),
    ];
    for (name, controller) in controllers {
        let config = config(controller);
        group.bench_function(name, |b| {
            b.iter(|| {
                sim.run(&trace, PlacementStrategy::IdleAware, &config)
                    .expect("replay")
            })
        });
    }
    let pid = config(ControllerConfig::HeadroomPid(PidConfig::default()));
    group.bench_function("hour_120fn_windowed_pid_4", |b| {
        b.iter(|| {
            sim.run_windowed(&trace, PlacementStrategy::IdleAware, &pid, 4, 60.0)
                .expect("replay")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(8));
    targets = bench_experiments, bench_parallel_vs_sequential, bench_spot_market, bench_control_loop
}
criterion_main!(benches);

//! One Criterion bench per paper table/figure.
//!
//! Each bench runs the corresponding `freedom-experiments` kernel at
//! reduced repetitions (see [`freedom_bench::bench_opts`]), so `cargo
//! bench` exercises every experiment end-to-end and tracks regressions in
//! the kernels that regenerate the paper's results.

use criterion::{criterion_group, criterion_main, Criterion};
use freedom_bench::bench_opts;
use freedom_experiments as exp;
use freedom_optimizer::Objective;

fn bench_experiments(c: &mut Criterion) {
    let opts = bench_opts();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);

    group.bench_function("fig01_config_spread", |b| {
        b.iter(|| exp::fig01_config_spread::run(&opts).expect("fig01"))
    });
    group.bench_function("fig03_strategies", |b| {
        b.iter(|| exp::fig03_strategies::run(&opts).expect("fig03"))
    });
    group.bench_function("table3_alternatives", |b| {
        b.iter(|| exp::table3_alternatives::run(&opts).expect("table3"))
    });
    group.bench_function("fig04_sampling_vs_bo", |b| {
        b.iter(|| exp::fig04_sampling_vs_bo::run(&opts).expect("fig04"))
    });
    group.bench_function("fig05_convergence_et", |b| {
        b.iter(|| exp::fig05_convergence::run(&opts, Objective::ExecutionTime).expect("fig05"))
    });
    group.bench_function("fig06_convergence_ec", |b| {
        b.iter(|| exp::fig05_convergence::run(&opts, Objective::ExecutionCost).expect("fig06"))
    });
    group.bench_function("fig07_input_specific", |b| {
        b.iter(|| exp::fig07_input_specific::run(&opts).expect("fig07"))
    });
    group.bench_function("fig08_online_violations", |b| {
        b.iter(|| exp::fig08_online_violations::run(&opts).expect("fig08"))
    });
    group.bench_function("fig09_mape_space", |b| {
        b.iter(|| {
            exp::fig09_mape::run(&opts, exp::fig09_mape::Scenario::WholeSpace).expect("fig09")
        })
    });
    group.bench_function("fig10_mape_per_family", |b| {
        b.iter(|| {
            exp::fig09_mape::run(&opts, exp::fig09_mape::Scenario::PerFamilyBest).expect("fig10")
        })
    });
    group.bench_function("fig12_pareto_distance", |b| {
        b.iter(|| exp::fig12_pareto_distance::run(&opts).expect("fig12"))
    });
    group.bench_function("fig13_weighted_mo", |b| {
        b.iter(|| exp::fig13_weighted_mo::run(&opts).expect("fig13"))
    });
    group.bench_function("fig14_hierarchical", |b| {
        b.iter(|| exp::fig14_hierarchical::run(&opts).expect("fig14"))
    });
    group.bench_function("fig15_provider_savings", |b| {
        b.iter(|| exp::fig15_provider_savings::run(&opts).expect("fig15"))
    });

    group.finish();
}

/// Wall-clock comparison of the whole hot path on a representative slice
/// of the figure suite at `ExperimentOpts::fast`:
///
/// - `fast_suite_naive` — the pre-optimization engine: one thread and a
///   full from-scratch GP hyperparameter search at every BO step
///   (`surrogate_refit_every = 1`);
/// - `fast_suite_sequential` — incremental engine, one thread (the
///   algorithmic win in isolation);
/// - `fast_suite_parallel` — incremental engine fanned across all cores.
///
/// naive / parallel is the headline speedup of this optimization pass.
fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("speedup");
    group.sample_size(3);
    let suite = |opts: &exp::ExperimentOpts| {
        exp::fig04_sampling_vs_bo::run(opts).expect("fig04");
        exp::fig05_convergence::run(opts, Objective::ExecutionTime).expect("fig05");
    };
    let naive = exp::ExperimentOpts {
        surrogate_refit_every: 1,
        ..exp::ExperimentOpts::fast().with_threads(1)
    };
    group.bench_function("fast_suite_naive", |b| b.iter(|| suite(&naive)));
    let sequential = exp::ExperimentOpts::fast().with_threads(1);
    group.bench_function("fast_suite_sequential", |b| b.iter(|| suite(&sequential)));
    let parallel = exp::ExperimentOpts::fast();
    group.bench_function("fast_suite_parallel", |b| b.iter(|| suite(&parallel)));
    group.finish();
}

/// Shared-spot-market replay at Azure-trace scale: an hour-long
/// heavy-tail trace over 120 functions contending for one fluctuating
/// market, replayed with the sequential reference engine and the
/// windowed engine (60 s windows, boundary reconciliation) at 1/4/8
/// workers — bit-identical outputs, see `crates/core/README.md`.
/// `sequential` vs `windowed_8` is the headline fleet-scale speedup; it
/// needs a ≥4-core machine to show up in wall clock, and `windowed_1`
/// tracks the reconciliation overhead the speculation pays on one core.
/// Included in the quick-bench `BENCH_pr.json` artifact like every other
/// bench here, so the perf trajectory records fleet-scale numbers per
/// PR.
fn bench_spot_market(c: &mut Criterion) {
    use exp::fleet_simulation::{market_config, market_tightness, synthetic_plans};
    use freedom::fleet::{
        AdmissionPolicy, FleetConfig, FleetSimulator, PlacementStrategy, TraceSource,
    };

    let mut group = c.benchmark_group("spot_market");
    group.sample_size(10);
    let plans = synthetic_plans(120, 42).expect("fleet fixture");
    let sim = FleetSimulator::new(plans).expect("non-empty fleet");
    let tightness = market_tightness();
    let config = FleetConfig {
        market: market_config(&tightness[1], AdmissionPolicy::Greedy),
        ..FleetConfig::default()
    };
    let trace = TraceSource::HeavyTail {
        mean_rps: 0.5,
        alpha: 1.5,
    }
    .generate_sharded(120, 3600.0, 42, 8)
    .expect("hour-long heavy-tail trace");
    group.bench_function("hour_120fn_sequential", |b| {
        b.iter(|| {
            sim.run(&trace, PlacementStrategy::IdleAware, &config)
                .expect("replay")
        })
    });
    for threads in [1usize, 4, 8] {
        group.bench_function(format!("hour_120fn_windowed_{threads}"), |b| {
            b.iter(|| {
                sim.run_windowed(&trace, PlacementStrategy::IdleAware, &config, threads, 60.0)
                    .expect("replay")
            })
        });
    }
    group.finish();
}

/// The closed control loop at Azure-trace scale: the same hour-long
/// 120-function heavy-tail replay as `spot_market`, but with each
/// controller revising admission and placements at a 20 s cadence —
/// `static` prices the tick machinery itself (observation accumulation
/// and no-op ticks over the open-loop engine), `pid` adds the feedback
/// arithmetic, and `right_sizer` adds the per-function surrogate refits
/// and batched re-planning. `windowed_pid_4` tracks the controller
/// state crossing window boundaries under reconciliation. Feeds the
/// quick-bench `BENCH_pr.json` artifact like every other group here.
///
/// Right-sizer tick amortization (batch the epoch's fresh observations
/// into one warm-start `fit_update` per function instead of one per
/// observation), measured on the 1-core build container: before
/// 22.3 ms static vs 32.7 ms right_sizer (+47%); after 21.5 ms vs
/// 28.3 ms (+32%) — roughly a third of the tick overhead gone.
fn bench_control_loop(c: &mut Criterion) {
    use exp::fleet_simulation::{market_config, market_tightness, synthetic_plans};
    use freedom::fleet::{
        AdmissionPolicy, ControlConfig, ControllerConfig, FleetConfig, FleetSimulator, PidConfig,
        PlacementStrategy, RightSizerConfig, TraceSource,
    };

    let mut group = c.benchmark_group("control_loop");
    group.sample_size(10);
    let plans = synthetic_plans(120, 42).expect("fleet fixture");
    let sim = FleetSimulator::new(plans).expect("non-empty fleet");
    let tightness = market_tightness();
    let config = |controller| FleetConfig {
        market: market_config(&tightness[1], AdmissionPolicy::Greedy),
        control: ControlConfig {
            cadence_secs: 20.0,
            controller,
        },
        ..FleetConfig::default()
    };
    let trace = TraceSource::HeavyTail {
        mean_rps: 0.5,
        alpha: 1.5,
    }
    .generate_sharded(120, 3600.0, 42, 8)
    .expect("hour-long heavy-tail trace");
    let controllers = [
        ("hour_120fn_static", ControllerConfig::Static),
        (
            "hour_120fn_pid",
            ControllerConfig::HeadroomPid(PidConfig::default()),
        ),
        (
            "hour_120fn_right_sizer",
            ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
        ),
    ];
    for (name, controller) in controllers {
        let config = config(controller);
        group.bench_function(name, |b| {
            b.iter(|| {
                sim.run(&trace, PlacementStrategy::IdleAware, &config)
                    .expect("replay")
            })
        });
    }
    let pid = config(ControllerConfig::HeadroomPid(PidConfig::default()));
    group.bench_function("hour_120fn_windowed_pid_4", |b| {
        b.iter(|| {
            sim.run_windowed(&trace, PlacementStrategy::IdleAware, &pid, 4, 60.0)
                .expect("replay")
        })
    });
    group.finish();
}

/// The streaming event pipeline at full Azure scale: events produced
/// lazily by per-function cursors and consumed exactly once, so peak
/// memory is O(functions + in-flight) instead of O(total arrivals).
///
/// - `hour_120fn_materialized` is trace → report on the old pipeline:
///   `TraceSource::generate` (streams + merged view, O(events) memory)
///   followed by the reference replay. `hour_120fn_streaming` is the
///   same work fused into one constant-memory pass — the ≤ 1.2×
///   per-event acceptance comparison (`spot_market/hour_120fn_sequential`
///   isolates the replay of *pre-built* events, which is unchanged).
/// - `day_1200fn_streaming` is the headline: a 24-hour, 1200-function
///   heavy-tail trace (~1M arrivals, "Serverless in the Wild"-shaped)
///   whose merged view the materialized path would have to hold
///   resident in full.
///
/// Alongside the timings, the group reports two counters into the
/// quick-bench `BENCH_pr.json` artifact (`freedom_bench::report_counter`):
/// the day replay's events/sec and its peak-events-resident —
/// in-flight placements + cursor lookahead, the whole memory story.
fn bench_streaming_replay(c: &mut Criterion) {
    use exp::fleet_simulation::{market_config, market_tightness, synthetic_plans};
    use freedom::fleet::{
        AdmissionPolicy, FleetConfig, FleetSimulator, PlacementStrategy, StreamTrace, TraceSource,
    };

    let mut group = c.benchmark_group("streaming_replay");
    group.sample_size(10);
    let tightness = market_tightness();
    let config = FleetConfig {
        market: market_config(&tightness[1], AdmissionPolicy::Greedy),
        ..FleetConfig::default()
    };
    let hour_sim =
        FleetSimulator::new(synthetic_plans(120, 42).expect("fleet fixture")).expect("fleet");
    let hour = StreamTrace::generate_sharded(
        TraceSource::HeavyTail {
            mean_rps: 0.5,
            alpha: 1.5,
        },
        120,
        3600.0,
        42,
        8,
    )
    .expect("hour-long heavy-tail trace");
    let hour_source = TraceSource::HeavyTail {
        mean_rps: 0.5,
        alpha: 1.5,
    };
    group.bench_function("hour_120fn_materialized", |b| {
        b.iter(|| {
            let trace = hour_source
                .generate(120, 3600.0, 42)
                .expect("hour-long heavy-tail trace");
            hour_sim
                .run(&trace, PlacementStrategy::IdleAware, &config)
                .expect("replay")
        })
    });
    group.bench_function("hour_120fn_streaming", |b| {
        b.iter(|| {
            hour_sim
                .run_stream(&hour, PlacementStrategy::IdleAware, &config)
                .expect("replay")
        })
    });

    let day_sim =
        FleetSimulator::new(synthetic_plans(1200, 42).expect("fleet fixture")).expect("fleet");
    let day = StreamTrace::generate_sharded(
        TraceSource::HeavyTail {
            mean_rps: 0.01,
            alpha: 1.5,
        },
        1200,
        86_400.0,
        42,
        8,
    )
    .expect("day-long heavy-tail trace");
    group.bench_function("day_1200fn_streaming", |b| {
        b.iter(|| {
            day_sim
                .run_stream(&day, PlacementStrategy::IdleAware, &config)
                .expect("replay")
        })
    });
    group.finish();

    // One instrumented replay for the counters: peak resident events
    // must be in-flight + cursor lookahead, never total arrivals.
    let started = std::time::Instant::now();
    let (_, stats) = day_sim
        .run_stream_with_stats(&day, PlacementStrategy::IdleAware, &config)
        .expect("replay");
    let events_per_sec = stats.events as f64 / started.elapsed().as_secs_f64();
    assert!(
        stats.peak_resident_events() < stats.events / 100,
        "peak resident {} is not bounded well below {} arrivals",
        stats.peak_resident_events(),
        stats.events
    );
    println!(
        "bench streaming_replay/day_1200fn: {} events, {:.0} events/sec, \
         peak resident {} ({} in-flight + {} cursor lookahead)",
        stats.events,
        events_per_sec,
        stats.peak_resident_events(),
        stats.peak_inflight,
        stats.peak_cursor_resident,
    );
    freedom_bench::report_counter(
        "streaming_replay/day_1200fn_events_per_sec",
        events_per_sec,
        "events/sec",
    );
    freedom_bench::report_counter(
        "streaming_replay/day_1200fn_peak_resident_events",
        stats.peak_resident_events() as f64,
        "events",
    );

    // The day-scale threads sweep: windowed streaming replay across
    // threads × window sizes, each row reporting events/sec and the
    // overhead ratio against the single-threaded `run_stream` pass
    // timed above. On multi-core CI runners the 4- and 8-thread rows
    // are the near-linear-scaling acceptance evidence; the ratio also
    // pins the windowed engine's overhead (speculation + checkpoint
    // ladder) at 1 thread. In quick/--fast mode the sweep shrinks to a
    // single smoke cell so CI still validates the counter plumbing.
    let t1 = started.elapsed().as_secs_f64();
    let (threads_sweep, windows_sweep): (&[usize], &[f64]) = if criterion::is_quick() {
        (&[2], &[60.0])
    } else {
        (&[1, 2, 4, 8], &[10.0, 60.0])
    };
    for &window_secs in windows_sweep {
        for &threads in threads_sweep {
            let t0 = std::time::Instant::now();
            let report = day_sim
                .run_stream_windowed(
                    &day,
                    PlacementStrategy::IdleAware,
                    &config,
                    threads,
                    window_secs,
                )
                .expect("windowed replay");
            let elapsed = t0.elapsed().as_secs_f64();
            std::hint::black_box(report);
            let id = format!("streaming_replay/day_1200fn_windowed_t{threads}_w{window_secs:.0}s");
            println!(
                "bench {id}: {:.0} events/sec, {:.2}x of single-thread streaming",
                stats.events as f64 / elapsed,
                elapsed / t1,
            );
            freedom_bench::report_counter(
                &format!("{id}_events_per_sec"),
                stats.events as f64 / elapsed,
                "events/sec",
            );
            freedom_bench::report_counter(&format!("{id}_overhead"), elapsed / t1, "ratio");
        }
    }
}

/// The failure-domain replay at Azure-trace scale: the hour-long
/// 120-function heavy-tail fleet over a **three-zone** market with
/// preemption notices, replayed fault-free (`calm`) and under the stormy
/// fault plan (zone outages + correlated shock bursts + dropped
/// notices). `calm` vs `spot_market/hour_120fn_sequential` prices the
/// zone/notice bookkeeping itself; `calm` vs `stormy` prices the
/// injected faults and the migrate-or-demote resolution they force.
///
/// Alongside the timings, the group reports three counters into the
/// quick-bench `BENCH_pr.json` artifact: the stormy replay's
/// events/sec, its migration overhead (stormy wall clock over calm wall
/// clock — the price of resolving every displaced placement), and the
/// cross-zone migrations the hour actually performed.
fn bench_zone_outage(c: &mut Criterion) {
    use exp::fleet_simulation::{market_config, market_tightness, synthetic_plans};
    use exp::fleet_zone_outage::{fault_presets, zone_layout};
    use freedom::fleet::{
        AdmissionPolicy, FleetConfig, FleetSimulator, PlacementStrategy, StreamTrace, TraceSource,
    };
    use freedom::market::MarketConfig;

    let mut group = c.benchmark_group("zone_outage");
    group.sample_size(10);
    let sim = FleetSimulator::new(synthetic_plans(120, 42).expect("fleet fixture")).expect("fleet");
    let tightness = market_tightness();
    let market = MarketConfig {
        zones: zone_layout(),
        ..market_config(&tightness[1], AdmissionPolicy::Greedy)
    };
    let calm = FleetConfig {
        market,
        ..FleetConfig::default()
    };
    let stormy = FleetConfig {
        faults: fault_presets()[2].plan,
        ..calm
    };
    let trace = StreamTrace::generate_sharded(
        TraceSource::HeavyTail {
            mean_rps: 0.5,
            alpha: 1.5,
        },
        120,
        3600.0,
        42,
        8,
    )
    .expect("hour-long heavy-tail trace");
    for (name, config) in [("hour_120fn_calm", &calm), ("hour_120fn_stormy", &stormy)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                sim.run_stream(&trace, PlacementStrategy::IdleAware, config)
                    .expect("replay")
            })
        });
    }
    group.finish();

    // One timed pass per config for the counters: events/sec under
    // faults, and the migration overhead the stormy hour pays.
    let time_one = |config: &FleetConfig| {
        let t0 = std::time::Instant::now();
        let report = sim
            .run_stream(&trace, PlacementStrategy::IdleAware, config)
            .expect("replay");
        (t0.elapsed().as_secs_f64(), report)
    };
    let (calm_secs, calm_report) = time_one(&calm);
    let (stormy_secs, stormy_report) = time_one(&stormy);
    assert_eq!(calm_report.invocations, stormy_report.invocations);
    assert!(
        stormy_report.migrated > 0,
        "the stormy hour must migrate displaced work cross-zone"
    );
    let events_per_sec = stormy_report.invocations as f64 / stormy_secs;
    println!(
        "bench zone_outage/hour_120fn_stormy: {:.0} events/sec, {:.2}x of calm, \
         {} migrated / {} drained / {} demoted",
        events_per_sec,
        stormy_secs / calm_secs,
        stormy_report.migrated,
        stormy_report.drained,
        stormy_report.spot_demoted,
    );
    freedom_bench::report_counter(
        "zone_outage/hour_120fn_stormy_events_per_sec",
        events_per_sec,
        "events/sec",
    );
    freedom_bench::report_counter(
        "zone_outage/hour_120fn_migration_overhead",
        stormy_secs / calm_secs,
        "ratio",
    );
    freedom_bench::report_counter(
        "zone_outage/hour_120fn_migrations",
        stormy_report.migrated as f64,
        "placements",
    );
}

/// The week-scale headline: the 14-day × 10 000-function diurnal trace,
/// synthesized as one gzip'd CSV per day and streamed through
/// `from_csv_parts` — decompression, parsing, and replay overlap, and
/// peak resident events stay bounded by in-flight + lookahead while the
/// full trace is ~10 M arrivals. In quick/--fast mode the same pipeline
/// runs at the downscaled 2-day × 2 000-function shape so CI still
/// exercises the multi-file gz path and the counter plumbing.
///
/// Counters reported into `BENCH_pr.json`: events/sec, ns/event, peak
/// resident events, and decompress MB/s (compressed input over replay
/// wall clock — the streaming reader inflates every byte it replays),
/// plus a windowed row whose overhead ratio prices the speculation +
/// reconciliation machinery at week scale.
///
/// A one-day anchor row with the same functions, market, and trace
/// generator rides along: it is the day-scale baseline at *identical*
/// per-event work, so "no per-event regression from scale" is the
/// multi-day row's events/sec meeting or beating the anchor's.
fn bench_week_replay(c: &mut Criterion) {
    use exp::fleet_simulation::{market_config, market_tightness, synthetic_plans};
    use exp::week_trace::WeekTraceSpec;
    use freedom::fleet::{
        AdmissionPolicy, FleetConfig, FleetSimulator, PlacementStrategy, StreamTrace,
    };

    let spec = if criterion::is_quick() {
        WeekTraceSpec::downscaled()
    } else {
        WeekTraceSpec::headline()
    };
    let sim = FleetSimulator::new(synthetic_plans(spec.functions as usize, 4).expect("plans"))
        .expect("fleet");
    // The scarce, volatile market — week-scale replay against the
    // preset where demotions and admission control actually bite.
    let tightness = market_tightness();
    let config = FleetConfig {
        market: market_config(&tightness[2], AdmissionPolicy::Greedy),
        ..FleetConfig::default()
    };

    let tag = spec.tag();
    let parts = spec.gz_parts(8);
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    let trace = StreamTrace::from_csv_parts(&refs).expect("scan gz day parts");

    let mut group = c.benchmark_group("week_replay");
    group.sample_size(10);
    group.bench_function(format!("{tag}_gz_streaming"), |b| {
        b.iter(|| {
            sim.run_stream(&trace, PlacementStrategy::IdleAware, &config)
                .expect("replay")
        })
    });
    group.finish();

    // The instrumented passes behind the headline counters: the one-day
    // anchor first, then the multi-day trace.
    let anchor_spec = WeekTraceSpec { days: 1, ..spec };
    let mut wall = 0.0;
    let mut stats = None;
    for day_spec in [&anchor_spec, &spec] {
        let day_tag = day_spec.tag();
        let day_parts = day_spec.gz_parts(8);
        let day_gz_bytes: usize = day_parts.iter().map(|p| p.len()).sum();
        let day_refs: Vec<&[u8]> = day_parts.iter().map(|p| p.as_slice()).collect();
        let day_trace = StreamTrace::from_csv_parts(&day_refs).expect("scan gz day parts");
        let started = std::time::Instant::now();
        let (_, s) = sim
            .run_stream_with_stats(&day_trace, PlacementStrategy::IdleAware, &config)
            .expect("replay");
        let day_wall = started.elapsed().as_secs_f64();
        let events_per_sec = s.events as f64 / day_wall;
        assert!(
            s.peak_resident_events() < s.events / 100,
            "peak resident {} is not bounded well below {} arrivals",
            s.peak_resident_events(),
            s.events
        );
        println!(
            "bench week_replay/{day_tag}: {} events over {} gz days, {:.0} events/sec, \
             {:.0} ns/event, {:.1} MB/s decompressed, peak resident {}",
            s.events,
            day_spec.days,
            events_per_sec,
            day_wall * 1e9 / s.events as f64,
            day_gz_bytes as f64 / 1e6 / day_wall,
            s.peak_resident_events(),
        );
        freedom_bench::report_counter(
            &format!("week_replay/{day_tag}_events_per_sec"),
            events_per_sec,
            "events/sec",
        );
        freedom_bench::report_counter(
            &format!("week_replay/{day_tag}_ns_per_event"),
            day_wall * 1e9 / s.events as f64,
            "ns/event",
        );
        freedom_bench::report_counter(
            &format!("week_replay/{day_tag}_peak_resident_events"),
            s.peak_resident_events() as f64,
            "events",
        );
        freedom_bench::report_counter(
            &format!("week_replay/{day_tag}_decompress_mb_per_sec"),
            day_gz_bytes as f64 / 1e6 / day_wall,
            "MB/s",
        );
        wall = day_wall;
        stats = Some(s);
    }
    let stats = stats.expect("instrumented pass ran");

    // Telemetry-on row: the same multi-day single-pass replay with a
    // live recorder attached. The instrumented ns/event prices the
    // whole telemetry layer (counters + histograms + sampled wall
    // timing + span ring); the acceptance bar is ≤5% overhead. The two
    // variants alternate and compare best-of-N walls — a one-shot pass
    // pair would let scheduler noise masquerade as recorder overhead
    // (single-shot walls of identical passes vary by far more than 5%).
    {
        use freedom::fleet::Telemetry;
        let reps = 3;
        let mut off_best = f64::INFINITY;
        let mut on_best = f64::INFINITY;
        let mut spans = 0;
        let mut dropped = 0;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let report = sim
                .run_stream(&trace, PlacementStrategy::IdleAware, &config)
                .expect("replay");
            off_best = off_best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(report);

            let mut tel = Telemetry::new();
            let t0 = std::time::Instant::now();
            let (report, _) = sim
                .run_stream_traced(&trace, PlacementStrategy::IdleAware, &config, &mut tel)
                .expect("traced replay");
            on_best = on_best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(report);
            spans = tel.spans().count();
            dropped = tel.dropped_spans();
        }
        let tel_ns = on_best * 1e9 / stats.events as f64;
        println!(
            "bench week_replay/{tag}_telemetry: {:.0} events/sec, {:.0} ns/event, \
             {:.3}x of telemetry-off ({spans} spans, {dropped} dropped)",
            stats.events as f64 / on_best,
            tel_ns,
            on_best / off_best,
        );
        freedom_bench::report_counter(
            &format!("week_replay/{tag}_telemetry_ns_per_event"),
            tel_ns,
            "ns/event",
        );
        freedom_bench::report_counter(
            &format!("week_replay/{tag}_telemetry_overhead"),
            on_best / off_best,
            "ratio",
        );
    }

    // Windowed row: hour-long windows across the whole span, overhead
    // priced against the single-pass streaming wall clock above.
    let threads = if criterion::is_quick() { 2 } else { 8 };
    let t0 = std::time::Instant::now();
    let report = sim
        .run_stream_windowed(
            &trace,
            PlacementStrategy::IdleAware,
            &config,
            threads,
            3600.0,
        )
        .expect("windowed replay");
    let elapsed = t0.elapsed().as_secs_f64();
    std::hint::black_box(report);
    let id = format!("week_replay/{tag}_windowed_t{threads}_w3600s");
    println!(
        "bench {id}: {:.0} events/sec, {:.2}x of single-pass streaming",
        stats.events as f64 / elapsed,
        elapsed / wall,
    );
    freedom_bench::report_counter(
        &format!("{id}_events_per_sec"),
        stats.events as f64 / elapsed,
        "events/sec",
    );
    freedom_bench::report_counter(&format!("{id}_overhead"), elapsed / wall, "ratio");
}

/// The retry path at week scale: the same multi-day gz trace as
/// `week_replay`, replayed flaky — per-invocation transients
/// (crash-on-start, mid-flight aborts, stragglers) under the full retry
/// stack (seeded backoff, per-family budgets, hedged re-issue) — next
/// to a faults-off anchor at identical per-event work.
///
/// Counters reported into `BENCH_pr.json`: the flaky replay's ns/event
/// (auto-gated by `scripts/bench_check` like every `*_ns_per_event`
/// row), the faults-off anchor's ns/event, and the retry overhead
/// ratio between them. The acceptance bar is ≤1.10×: scheduling
/// backoffs, racing hedges, and draining budgets ride the existing
/// event loop, so the flaky hot path may not grow per-event cost by
/// more than 10%. Both variants alternate and compare best-of-N walls,
/// like the telemetry row — one-shot pass pairs would let scheduler
/// noise masquerade as retry overhead.
fn bench_retry_storm(c: &mut Criterion) {
    use exp::fleet_simulation::{market_config, market_tightness, synthetic_plans};
    use exp::week_trace::WeekTraceSpec;
    use freedom::fleet::{
        AdmissionPolicy, FaultPlan, FleetConfig, FleetSimulator, PlacementStrategy, RetryPolicy,
        StreamTrace,
    };

    let spec = if criterion::is_quick() {
        WeekTraceSpec::downscaled()
    } else {
        WeekTraceSpec::headline()
    };
    let sim = FleetSimulator::new(synthetic_plans(spec.functions as usize, 4).expect("plans"))
        .expect("fleet");
    let tightness = market_tightness();
    let calm = FleetConfig {
        market: market_config(&tightness[2], AdmissionPolicy::Greedy),
        ..FleetConfig::default()
    };
    let flaky = FleetConfig {
        faults: FaultPlan {
            seed: 29,
            crash_prob: 0.04,
            abort_prob: 0.03,
            straggler_prob: 0.05,
            straggler_factor: 4.0,
            ..FaultPlan::NONE
        },
        retry: RetryPolicy {
            max_attempts: 4,
            backoff_base_secs: 0.5,
            backoff_cap_secs: 8.0,
            budget_per_sec: 2.0,
            budget_burst: 8.0,
            hedge_delay_secs: 1.0,
            ..RetryPolicy::DEFAULT
        },
        ..calm
    };

    let tag = spec.tag();
    let parts = spec.gz_parts(8);
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    let trace = StreamTrace::from_csv_parts(&refs).expect("scan gz day parts");

    let mut group = c.benchmark_group("retry_storm");
    group.sample_size(10);
    group.bench_function(format!("{tag}_flaky_streaming"), |b| {
        b.iter(|| {
            sim.run_stream(&trace, PlacementStrategy::IdleAware, &flaky)
                .expect("replay")
        })
    });
    group.finish();

    // The instrumented best-of-N passes behind the overhead counters.
    // Each run is normalized by the events *it* processes: a retry
    // activation is a full admission event (policy gate, best-fit,
    // fresh fault draw), so the flaky denominator is invocations plus
    // retry activations — otherwise genuine extra work would read as
    // per-event overhead.
    let reps = 5;
    let mut calm_best = f64::INFINITY;
    let mut flaky_best = f64::INFINITY;
    let mut calm_events = 0usize;
    let mut flaky_events = 0usize;
    let mut retried = 0usize;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let report = sim
            .run_stream(&trace, PlacementStrategy::IdleAware, &calm)
            .expect("replay");
        calm_best = calm_best.min(t0.elapsed().as_secs_f64());
        calm_events = report.invocations;
        std::hint::black_box(report);

        let t0 = std::time::Instant::now();
        let report = sim
            .run_stream(&trace, PlacementStrategy::IdleAware, &flaky)
            .expect("replay");
        flaky_best = flaky_best.min(t0.elapsed().as_secs_f64());
        retried = report.retried;
        flaky_events = report.invocations + report.retried;
        std::hint::black_box(report);
    }
    assert!(retried > 0, "the flaky week must actually retry");
    let calm_ns = calm_best * 1e9 / calm_events as f64;
    let flaky_ns = flaky_best * 1e9 / flaky_events as f64;
    let overhead = flaky_ns / calm_ns;
    println!(
        "bench retry_storm/{tag}: {:.0} ns/event flaky vs {:.0} ns/event faults-off, \
         {overhead:.3}x retry overhead ({retried} retries over {calm_events} invocations)",
        flaky_ns, calm_ns,
    );
    assert!(
        overhead <= 1.10,
        "retry path costs {overhead:.3}x per event — over the 1.10x acceptance bar"
    );
    freedom_bench::report_counter(
        &format!("retry_storm/{tag}_flaky_ns_per_event"),
        flaky_ns,
        "ns/event",
    );
    freedom_bench::report_counter(
        &format!("retry_storm/{tag}_faults_off_ns_per_event"),
        calm_ns,
        "ns/event",
    );
    freedom_bench::report_counter(
        &format!("retry_storm/{tag}_retry_overhead"),
        overhead,
        "ratio",
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(8));
    targets = bench_experiments, bench_parallel_vs_sequential, bench_spot_market,
        bench_control_loop, bench_streaming_replay, bench_zone_outage, bench_week_replay,
        bench_retry_storm
}
criterion_main!(benches);

//! Micro-benchmarks of the substrate operations.
//!
//! These isolate the costs that dominate the figure kernels: surrogate
//! fitting and prediction, the EI sweep over the 288-point space, the
//! ground-truth sweep, and the platform fast paths (invoke, placement,
//! pricing, Pareto extraction).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use freedom_cluster::{Cluster, InstanceFamily, PlacementPolicy};
use freedom_faas::{collect_ground_truth, FunctionSpec, Gateway, ResourceConfig};
use freedom_linalg::{cholesky, lu_solve, Matrix};
use freedom_optimizer::pareto::pareto_front;
use freedom_optimizer::{expected_improvement, LatinHypercube, Sampler, SearchSpace};
use freedom_pricing::CostModel;
use freedom_surrogates::{GaussianProcess, GpConfig, Surrogate, SurrogateKind};
use freedom_workloads::FunctionKind;

/// A 20-point training set shaped like a BO run's trials.
fn training_set() -> (Vec<Vec<f64>>, Vec<f64>) {
    let space = SearchSpace::table1();
    let x: Vec<Vec<f64>> = space
        .configs()
        .iter()
        .step_by(14)
        .take(20)
        .map(SearchSpace::encode)
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|f| 10.0 / f[0] + f[1] * 0.3 + f[2] * 2.0)
        .collect();
    (x, y)
}

fn bench_surrogates(c: &mut Criterion) {
    let (x, y) = training_set();
    let mut group = c.benchmark_group("surrogates");
    for kind in SurrogateKind::ALL {
        group.bench_function(format!("fit_{}", kind.name()), |b| {
            b.iter(|| {
                let mut model = kind.build(7);
                model.fit(black_box(&x), black_box(&y)).expect("fit");
                model
            })
        });
    }
    let mut gp = SurrogateKind::Gp.build(7);
    gp.fit(&x, &y).expect("fit");
    group.bench_function("predict_GP", |b| {
        b.iter(|| gp.predict(black_box(&x[3])).expect("predict"))
    });
    group.finish();
}

/// A 1-D training set ordered so its endpoints come first: appending any
/// later row leaves the feature normalization unchanged, which is what
/// lets the GP's append-one tier engage (exactly the BO-loop situation,
/// where the space's bounds are known from the start).
fn incremental_set(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut order = vec![0, n - 1];
    order.extend(1..n - 1);
    let x: Vec<Vec<f64>> = order
        .iter()
        .map(|&i| vec![i as f64 / (n - 1) as f64])
        .collect();
    let y: Vec<f64> = x.iter().map(|r| (4.0 * r[0]).sin() + 2.0).collect();
    (x, y)
}

/// The acceptance target of the incremental engine: at n ≥ 10 training
/// points, absorbing one more trial via the warm path must beat a
/// from-scratch candidate search + factorization.
fn bench_gp_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_refit");
    for n in [10usize, 20, 40] {
        let (x, y) = incremental_set(n);
        group.bench_function(format!("fit_scratch_n{n}"), |b| {
            b.iter(|| {
                let mut gp = GaussianProcess::new(GpConfig::default(), 7);
                gp.fit(black_box(&x), black_box(&y)).expect("fit");
                gp
            })
        });
        // Warm state fitted on the first n-1 rows; each sample replays the
        // append of row n through the incremental tier.
        let mut warm = GaussianProcess::new(
            GpConfig {
                refit_every: usize::MAX,
                ..GpConfig::default()
            },
            7,
        );
        warm.fit(&x[..n - 1], &y[..n - 1]).expect("warm fit");
        group.bench_function(format!("fit_incremental_n{n}"), |b| {
            b.iter(|| {
                let mut gp = warm.clone();
                gp.fit_update(black_box(&x), black_box(&y), 99)
                    .expect("update");
                assert_eq!(gp.fits_since_full(), 1, "append tier not taken");
                gp
            })
        });
    }
    group.finish();
}

fn bench_optimizer_primitives(c: &mut Criterion) {
    let (x, y) = training_set();
    let mut gp = SurrogateKind::Gp.build(7);
    gp.fit(&x, &y).expect("fit");
    let space = SearchSpace::table1();
    let mut group = c.benchmark_group("optimizer");
    group.bench_function("ei_sweep_288", |b| {
        b.iter(|| {
            let mut best = f64::NEG_INFINITY;
            for config in space.configs() {
                let p = gp.predict(&SearchSpace::encode(config)).expect("predict");
                best = best.max(expected_improvement(p.mean, p.std, 5.0, 0.05));
            }
            best
        })
    });
    group.bench_function("lhs_sample_20", |b| {
        let mut sampler = LatinHypercube::new(3);
        b.iter(|| sampler.sample(black_box(&space), 20).expect("sample"))
    });
    let cloud: Vec<(f64, f64)> = (0..288)
        .map(|i| {
            let t = 1.0 + ((i * 37) % 97) as f64;
            let c = 1.0 + ((i * 61) % 89) as f64;
            (t, c)
        })
        .collect();
    group.bench_function("pareto_front_288", |b| {
        b.iter(|| pareto_front(black_box(&cloud)))
    });
    group.finish();
}

fn bench_platform(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform");
    group.bench_function("gateway_invoke", |b| {
        let mut gw = Gateway::new(1).expect("gateway");
        gw.deploy(
            FunctionSpec::new("s3", FunctionKind::S3),
            ResourceConfig::new(InstanceFamily::M5, 1.0, 256).expect("config"),
        )
        .expect("deploy");
        let input = FunctionKind::S3.default_input();
        b.iter(|| gw.invoke("s3", black_box(&input)).expect("invoke"))
    });
    group.bench_function("ground_truth_sweep_288x1", |b| {
        let space = SearchSpace::table1();
        b.iter(|| {
            collect_ground_truth(
                FunctionKind::Faceblur,
                &FunctionKind::Faceblur.default_input(),
                space.configs(),
                1,
                9,
            )
            .expect("sweep")
        })
    });
    group.bench_function("cluster_place_release", |b| {
        let mut cluster = Cluster::auto_provisioning(PlacementPolicy::BestFit);
        b.iter(|| {
            let sb = cluster.place(InstanceFamily::C6g, 1.0, 512).expect("place");
            cluster.release(sb).expect("release");
        })
    });
    let model = CostModel::aws().expect("cost model");
    group.bench_function("execution_cost", |b| {
        b.iter(|| {
            model
                .execution_cost(InstanceFamily::C5, black_box(1.25), 768, 12.5)
                .expect("cost")
        })
    });
    group.finish();
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    // A 20x20 SPD matrix, the size of a BO kernel matrix.
    let n = 20;
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = (-(((i as f64) - (j as f64)).powi(2)) / 8.0).exp();
            a.set(i, j, v);
        }
        a.set(i, i, a.get(i, i) + 0.1);
    }
    group.bench_function("cholesky_20", |b| {
        b.iter(|| cholesky(black_box(&a), 0.0).expect("spd"))
    });
    let sys = Matrix::from_rows(&[&[2.0, 0.0, 4.0], &[0.0, 2.0, 8.0], &[0.0, 2.0, 16.0]])
        .expect("matrix");
    group.bench_function("lu_solve_pricing_3x3", |b| {
        b.iter(|| lu_solve(black_box(&sys), &[0.085, 0.096, 0.126]).expect("solve"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_surrogates,
    bench_gp_incremental,
    bench_optimizer_primitives,
    bench_platform,
    bench_linalg
);
criterion_main!(benches);

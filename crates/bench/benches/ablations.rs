//! Ablation benches for the design choices called out in DESIGN.md §6.
//!
//! Each bench times a full BO run under one knob setting so the cost of a
//! design decision is visible next to its quality effect (quality is
//! reported by the `ablation_study` experiment binary):
//!
//! - failure handling: §5.1 slicing vs. the rejected large-penalty scheme;
//! - initial samples: 1 / 3 (paper default) / 5;
//! - measurement noise: σ ∈ {0, 3%, 10%};
//! - EI exploration ξ: 0.001 / 0.01 (default) / 0.1.

use criterion::{criterion_group, criterion_main, Criterion};
use freedom::GatewayEvaluator;
use freedom_faas::{FunctionSpec, Gateway};
use freedom_optimizer::{BayesianOptimizer, BoConfig, FailureHandling, Objective, SearchSpace};
use freedom_surrogates::SurrogateKind;
use freedom_workloads::FunctionKind;

fn evaluator(kind: FunctionKind, seed: u64, sigma: f64) -> GatewayEvaluator {
    let mut gateway = Gateway::new(seed).expect("gateway");
    gateway.set_noise_sigma(sigma);
    gateway
        .deploy(
            FunctionSpec::new(kind.name(), kind),
            SearchSpace::table1().configs()[0],
        )
        .expect("deploy");
    GatewayEvaluator::new(gateway, kind.name(), kind.default_input(), 1)
}

fn run_bo(config: BoConfig, sigma: f64) {
    // transcode exercises slicing (it OOMs at small memory levels).
    let kind = FunctionKind::Transcode;
    let mut eval = evaluator(kind, config.seed, sigma);
    BayesianOptimizer::new(SurrogateKind::Gp, config)
        .optimize(&SearchSpace::table1(), &mut eval, Objective::ExecutionTime)
        .expect("optimize");
}

fn bench_failure_handling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_failure_handling");
    group.sample_size(10);
    for (label, handling) in [
        ("slice", FailureHandling::Slice),
        ("penalty_1000", FailureHandling::Penalty(1000.0)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                run_bo(
                    BoConfig {
                        failure_handling: handling,
                        seed: 5,
                        budget: 12,
                        ..BoConfig::default()
                    },
                    0.03,
                )
            })
        });
    }
    group.finish();
}

fn bench_initial_samples(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_initial_samples");
    group.sample_size(10);
    for n_initial in [1usize, 3, 5] {
        group.bench_function(format!("init_{n_initial}"), |b| {
            b.iter(|| {
                run_bo(
                    BoConfig {
                        n_initial,
                        seed: 5,
                        budget: 12,
                        ..BoConfig::default()
                    },
                    0.03,
                )
            })
        });
    }
    group.finish();
}

fn bench_noise_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_noise");
    group.sample_size(10);
    for sigma_pct in [0u32, 3, 10] {
        group.bench_function(format!("sigma_{sigma_pct}pct"), |b| {
            b.iter(|| {
                run_bo(
                    BoConfig {
                        seed: 5,
                        budget: 12,
                        ..BoConfig::default()
                    },
                    sigma_pct as f64 / 100.0,
                )
            })
        });
    }
    group.finish();
}

fn bench_xi(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_xi");
    group.sample_size(10);
    for (label, xi) in [("xi_0001", 0.001), ("xi_001", 0.01), ("xi_01", 0.1)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                run_bo(
                    BoConfig {
                        xi,
                        seed: 5,
                        budget: 12,
                        ..BoConfig::default()
                    },
                    0.03,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_failure_handling,
    bench_initial_samples,
    bench_noise_sensitivity,
    bench_xi
);
criterion_main!(benches);

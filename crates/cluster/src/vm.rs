//! A single virtual machine with vCPU-share and memory accounting.

use crate::{ClusterError, InstanceType, Result};

/// Opaque VM identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub(crate) u64);

impl VmId {
    /// Raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// A virtual machine hosting function sandboxes.
///
/// Resource accounting is done in milli-vCPUs (to keep the arithmetic exact
/// for shares like 0.25) and MiB of memory. A VM never oversubscribes:
/// placements that would exceed capacity are rejected.
#[derive(Debug, Clone)]
pub struct Vm {
    id: VmId,
    instance_type: InstanceType,
    allocated_milli_vcpus: u32,
    allocated_mib: u32,
}

impl Vm {
    pub(crate) fn new(id: VmId, instance_type: InstanceType) -> Self {
        Self {
            id,
            instance_type,
            allocated_milli_vcpus: 0,
            allocated_mib: 0,
        }
    }

    /// This VM's id.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The VM's instance type.
    pub fn instance_type(&self) -> InstanceType {
        self.instance_type
    }

    /// Total vCPU capacity in milli-vCPUs.
    pub fn capacity_milli_vcpus(&self) -> u32 {
        self.instance_type.vcpus() * 1000
    }

    /// Total memory capacity in MiB.
    pub fn capacity_mib(&self) -> u32 {
        self.instance_type.memory_mib()
    }

    /// Currently allocated milli-vCPUs.
    pub fn allocated_milli_vcpus(&self) -> u32 {
        self.allocated_milli_vcpus
    }

    /// Currently allocated MiB.
    pub fn allocated_mib(&self) -> u32 {
        self.allocated_mib
    }

    /// Free milli-vCPUs.
    pub fn free_milli_vcpus(&self) -> u32 {
        self.capacity_milli_vcpus() - self.allocated_milli_vcpus
    }

    /// Free MiB.
    pub fn free_mib(&self) -> u32 {
        self.capacity_mib() - self.allocated_mib
    }

    /// Whether a request for `milli_vcpus` and `mib` fits on this VM.
    pub fn fits(&self, milli_vcpus: u32, mib: u32) -> bool {
        self.free_milli_vcpus() >= milli_vcpus && self.free_mib() >= mib
    }

    /// Reserves capacity; rejects oversubscription.
    pub(crate) fn reserve(&mut self, milli_vcpus: u32, mib: u32) -> Result<()> {
        if !self.fits(milli_vcpus, mib) {
            return Err(ClusterError::InsufficientCapacity {
                family: self.instance_type.family.to_string(),
                cpu_share_milli: milli_vcpus,
                memory_mib: mib,
            });
        }
        self.allocated_milli_vcpus += milli_vcpus;
        self.allocated_mib += mib;
        Ok(())
    }

    /// Releases previously reserved capacity (saturating, so a double
    /// release cannot underflow the accounting).
    pub(crate) fn release(&mut self, milli_vcpus: u32, mib: u32) {
        self.allocated_milli_vcpus = self.allocated_milli_vcpus.saturating_sub(milli_vcpus);
        self.allocated_mib = self.allocated_mib.saturating_sub(mib);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstanceFamily, InstanceSize};

    fn vm() -> Vm {
        Vm::new(
            VmId(1),
            InstanceType::new(InstanceFamily::M5, InstanceSize::Large),
        )
    }

    #[test]
    fn capacity_reflects_instance_type() {
        let vm = vm();
        assert_eq!(vm.capacity_milli_vcpus(), 2000);
        assert_eq!(vm.capacity_mib(), 8192);
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut vm = vm();
        vm.reserve(1500, 4096).unwrap();
        assert_eq!(vm.free_milli_vcpus(), 500);
        assert_eq!(vm.free_mib(), 4096);
        vm.release(1500, 4096);
        assert_eq!(vm.free_milli_vcpus(), 2000);
        assert_eq!(vm.free_mib(), 8192);
    }

    #[test]
    fn rejects_oversubscription() {
        let mut vm = vm();
        vm.reserve(2000, 1024).unwrap();
        let err = vm.reserve(1, 1).unwrap_err();
        assert!(matches!(err, ClusterError::InsufficientCapacity { .. }));
        // Memory can also be the binding constraint.
        let mut vm2 = self::vm();
        vm2.reserve(100, 8192).unwrap();
        assert!(vm2.reserve(100, 1).is_err());
    }

    #[test]
    fn double_release_saturates() {
        let mut vm = vm();
        vm.reserve(500, 512).unwrap();
        vm.release(500, 512);
        vm.release(500, 512);
        assert_eq!(vm.allocated_milli_vcpus(), 0);
        assert_eq!(vm.allocated_mib(), 0);
    }
}

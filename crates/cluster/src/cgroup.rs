//! cgroup-style CPU and memory accounting.
//!
//! The paper's CPU *share* is CFS bandwidth control: a share of 0.25 grants
//! a quarter of one vCPU's time; shares above 1.0 grant whole vCPUs plus a
//! fraction. The memory *limit* is a hard cap that OOM-kills the workload
//! when its footprint crosses it — the behaviour §5.1's search-space slicing
//! exploits.

use std::fmt;

/// The CFS period used by the simulated bandwidth controller, in
/// microseconds (the kernel default).
pub const CFS_PERIOD_US: u64 = 100_000;

/// A CPU-control group: a share of vCPU time, CFS-quota style.
///
/// # Examples
///
/// ```
/// use freedom_cluster::CpuCgroup;
///
/// let cg = CpuCgroup::new(0.5).unwrap();
/// // 2 CPU-seconds of serial work take ~4 wall seconds at share 0.5
/// // (slightly more, because sub-vCPU shares pay CFS throttling latency).
/// let t = cg.wall_time_for(2.0, 1.0);
/// assert!(t >= 4.0 && t < 4.5);
/// // Parallel work (up to 4 ways) is still capped by the share.
/// let cg2 = CpuCgroup::new(2.0).unwrap();
/// assert!((cg2.wall_time_for(8.0, 4.0) - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCgroup {
    share: f64,
}

impl CpuCgroup {
    /// Creates a CPU cgroup with the given vCPU share.
    ///
    /// Returns `None` when the share is not finite and strictly positive.
    pub fn new(share: f64) -> Option<Self> {
        if share.is_finite() && share > 0.0 {
            Some(Self { share })
        } else {
            None
        }
    }

    /// The configured vCPU share.
    pub fn share(self) -> f64 {
        self.share
    }

    /// CFS quota in microseconds per [`CFS_PERIOD_US`] period, the way a
    /// container runtime would program it.
    pub fn cfs_quota_us(self) -> u64 {
        (self.share * CFS_PERIOD_US as f64).round() as u64
    }

    /// Effective parallel throughput, in vCPUs, for a workload that can use
    /// at most `parallelism` CPUs concurrently.
    ///
    /// A share below 1.0 throttles even serial code; a share above the
    /// workload's parallelism is wasted.
    pub fn effective_throughput(self, parallelism: f64) -> f64 {
        self.share.min(parallelism.max(1.0))
    }

    /// Wall-clock seconds needed to execute `cpu_seconds` of work that can
    /// run `parallelism`-wide under this cgroup.
    ///
    /// Sub-vCPU shares pay a small CFS throttling overhead: a throttled
    /// task sleeps out the rest of every period, which adds latency on
    /// wake-ups. We model it as a mild efficiency loss growing as the share
    /// shrinks (≈6% lost at share 0.25), consistent with measurements of
    /// CFS-bandwidth-controlled workloads.
    pub fn wall_time_for(self, cpu_seconds: f64, parallelism: f64) -> f64 {
        let throughput = self.effective_throughput(parallelism);
        let throttle_efficiency = if self.share < 1.0 {
            1.0 - 0.08 * (1.0 - self.share)
        } else {
            1.0
        };
        cpu_seconds / (throughput * throttle_efficiency)
    }
}

impl fmt::Display for CpuCgroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu.share={}", self.share)
    }
}

/// Verdict returned when a workload exceeds its memory limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomKill {
    /// The limit that was exceeded, in MiB.
    pub limit_mib: u32,
    /// The attempted footprint, in MiB.
    pub attempted_mib: u32,
}

impl fmt::Display for OomKill {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OOM-killed: attempted {} MiB with limit {} MiB",
            self.attempted_mib, self.limit_mib
        )
    }
}

/// A memory-control group: a hard limit with usage tracking.
///
/// # Examples
///
/// ```
/// use freedom_cluster::MemCgroup;
///
/// let mut cg = MemCgroup::new(512).unwrap();
/// assert!(cg.charge(300).is_ok());
/// assert!(cg.charge(300).is_err()); // 600 MiB total > 512 MiB limit
/// assert_eq!(cg.peak_mib(), 300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCgroup {
    limit_mib: u32,
    usage_mib: u32,
    peak_mib: u32,
}

impl MemCgroup {
    /// Creates a memory cgroup with the given hard limit in MiB.
    ///
    /// Returns `None` for a zero limit.
    pub fn new(limit_mib: u32) -> Option<Self> {
        if limit_mib == 0 {
            None
        } else {
            Some(Self {
                limit_mib,
                usage_mib: 0,
                peak_mib: 0,
            })
        }
    }

    /// The configured limit in MiB.
    pub fn limit_mib(self) -> u32 {
        self.limit_mib
    }

    /// Current usage in MiB.
    pub fn usage_mib(self) -> u32 {
        self.usage_mib
    }

    /// High-water mark in MiB.
    pub fn peak_mib(self) -> u32 {
        self.peak_mib
    }

    /// Charges `mib` of additional memory, OOM-killing on limit breach.
    ///
    /// On OOM the usage is left unchanged (the kernel kills the task before
    /// the allocation succeeds).
    pub fn charge(&mut self, mib: u32) -> Result<(), OomKill> {
        let attempted = self.usage_mib.saturating_add(mib);
        if attempted > self.limit_mib {
            return Err(OomKill {
                limit_mib: self.limit_mib,
                attempted_mib: attempted,
            });
        }
        self.usage_mib = attempted;
        self.peak_mib = self.peak_mib.max(attempted);
        Ok(())
    }

    /// Releases `mib` of memory (saturating at zero).
    pub fn uncharge(&mut self, mib: u32) {
        self.usage_mib = self.usage_mib.saturating_sub(mib);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_validation() {
        assert!(CpuCgroup::new(0.0).is_none());
        assert!(CpuCgroup::new(-1.0).is_none());
        assert!(CpuCgroup::new(f64::NAN).is_none());
        assert!(CpuCgroup::new(0.25).is_some());
    }

    #[test]
    fn cfs_quota_matches_kernel_convention() {
        assert_eq!(CpuCgroup::new(0.25).unwrap().cfs_quota_us(), 25_000);
        assert_eq!(CpuCgroup::new(1.0).unwrap().cfs_quota_us(), 100_000);
        assert_eq!(CpuCgroup::new(2.0).unwrap().cfs_quota_us(), 200_000);
    }

    #[test]
    fn serial_work_cannot_exceed_one_cpu() {
        let cg = CpuCgroup::new(2.0).unwrap();
        // Serial work (parallelism 1) runs at 1 vCPU even with share 2.
        assert!((cg.wall_time_for(3.0, 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn throttling_overhead_only_below_one() {
        let full = CpuCgroup::new(1.0).unwrap();
        assert!((full.wall_time_for(1.0, 1.0) - 1.0).abs() < 1e-12);
        let quarter = CpuCgroup::new(0.25).unwrap();
        // Ideal would be 4.0 s; throttling makes it slightly worse.
        let t = quarter.wall_time_for(1.0, 1.0);
        assert!(t > 4.0 && t < 4.5, "got {t}");
    }

    #[test]
    fn parallel_speedup_caps_at_parallelism() {
        let cg = CpuCgroup::new(2.0).unwrap();
        let wide = cg.wall_time_for(8.0, 4.0);
        let narrow = cg.wall_time_for(8.0, 1.5);
        assert!((wide - 4.0).abs() < 1e-12);
        assert!((narrow - 8.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn mem_charge_and_oom() {
        assert!(MemCgroup::new(0).is_none());
        let mut cg = MemCgroup::new(1024).unwrap();
        cg.charge(512).unwrap();
        cg.charge(512).unwrap();
        let err = cg.charge(1).unwrap_err();
        assert_eq!(err.limit_mib, 1024);
        assert_eq!(err.attempted_mib, 1025);
        assert_eq!(cg.usage_mib(), 1024);
        cg.uncharge(1000);
        assert_eq!(cg.usage_mib(), 24);
        assert_eq!(cg.peak_mib(), 1024);
    }

    #[test]
    fn oom_display() {
        let oom = OomKill {
            limit_mib: 128,
            attempted_mib: 300,
        };
        assert!(oom.to_string().contains("128"));
        assert!(oom.to_string().contains("300"));
    }
}

//! Fleet management: placement, provisioning, and idle-capacity queries.

use std::collections::BTreeMap;

use crate::{ClusterError, InstanceFamily, InstanceSize, InstanceType, Result, Vm, VmId};

/// Opaque sandbox identifier returned by [`Cluster::place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SandboxId(u64);

impl SandboxId {
    /// Raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// How the cluster chooses a VM for a new sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// First VM (in id order) of the right family with enough capacity.
    #[default]
    FirstFit,
    /// VM with the least free vCPU capacity that still fits (bin-packing).
    BestFit,
}

#[derive(Debug, Clone)]
struct SandboxRecord {
    vm: VmId,
    milli_vcpus: u32,
    mib: u32,
}

/// A fleet of VMs across instance families.
///
/// The cluster can either be pre-provisioned (fixed fleet, placements fail
/// when full) or auto-provisioning (a new `.4xlarge` VM of the requested
/// family is added when nothing fits — mirroring how a provider elastically
/// backs a serverless pool).
///
/// # Examples
///
/// ```
/// use freedom_cluster::{Cluster, InstanceFamily, PlacementPolicy};
///
/// let mut cluster = Cluster::auto_provisioning(PlacementPolicy::BestFit);
/// let sb = cluster.place(InstanceFamily::C6g, 2.0, 2048).unwrap();
/// assert_eq!(cluster.vm_count(), 1);
/// cluster.release(sb).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    vms: BTreeMap<VmId, Vm>,
    sandboxes: BTreeMap<SandboxId, SandboxRecord>,
    policy: PlacementPolicy,
    auto_provision: bool,
    next_vm_id: u64,
    next_sandbox_id: u64,
}

impl Cluster {
    /// Creates an empty, fixed-fleet cluster.
    pub fn new(policy: PlacementPolicy) -> Self {
        Self {
            vms: BTreeMap::new(),
            sandboxes: BTreeMap::new(),
            policy,
            auto_provision: false,
            next_vm_id: 0,
            next_sandbox_id: 0,
        }
    }

    /// Creates a cluster that provisions new VMs on demand.
    pub fn auto_provisioning(policy: PlacementPolicy) -> Self {
        let mut c = Self::new(policy);
        c.auto_provision = true;
        c
    }

    /// Adds a VM of the given family and size; returns its id.
    pub fn provision(&mut self, family: InstanceFamily, size: InstanceSize) -> VmId {
        let id = VmId(self.next_vm_id);
        self.next_vm_id += 1;
        self.vms
            .insert(id, Vm::new(id, InstanceType::new(family, size)));
        id
    }

    /// Number of VMs in the fleet.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Number of live sandboxes.
    pub fn sandbox_count(&self) -> usize {
        self.sandboxes.len()
    }

    /// Looks up a VM.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(&id)
    }

    /// The VM hosting a sandbox.
    pub fn sandbox_vm(&self, id: SandboxId) -> Option<VmId> {
        self.sandboxes.get(&id).map(|r| r.vm)
    }

    /// Places a sandbox with `cpu_share` vCPUs and `memory_mib` MiB on a VM
    /// of `family`.
    ///
    /// Returns [`ClusterError::InvalidRequest`] for non-positive shares or
    /// zero memory, and [`ClusterError::InsufficientCapacity`] when nothing
    /// fits and auto-provisioning is off.
    pub fn place(
        &mut self,
        family: InstanceFamily,
        cpu_share: f64,
        memory_mib: u32,
    ) -> Result<SandboxId> {
        if !cpu_share.is_finite() || cpu_share <= 0.0 {
            return Err(ClusterError::InvalidRequest(format!(
                "cpu share must be positive, got {cpu_share}"
            )));
        }
        if memory_mib == 0 {
            return Err(ClusterError::InvalidRequest(
                "memory must be non-zero".into(),
            ));
        }
        let milli_vcpus = (cpu_share * 1000.0).round() as u32;

        let candidate = self.pick_vm(family, milli_vcpus, memory_mib);
        let vm_id = match candidate {
            Some(id) => id,
            None if self.auto_provision => self.provision(family, InstanceSize::X4Large),
            None => {
                return Err(ClusterError::InsufficientCapacity {
                    family: family.to_string(),
                    cpu_share_milli: milli_vcpus,
                    memory_mib,
                })
            }
        };
        let vm = self.vms.get_mut(&vm_id).expect("picked VM exists");
        vm.reserve(milli_vcpus, memory_mib)?;

        let id = SandboxId(self.next_sandbox_id);
        self.next_sandbox_id += 1;
        self.sandboxes.insert(
            id,
            SandboxRecord {
                vm: vm_id,
                milli_vcpus,
                mib: memory_mib,
            },
        );
        Ok(id)
    }

    /// Releases a sandbox and returns its capacity to the hosting VM.
    ///
    /// Returns [`ClusterError::UnknownId`] for ids that were never placed or
    /// were already released.
    pub fn release(&mut self, id: SandboxId) -> Result<()> {
        let record = self
            .sandboxes
            .remove(&id)
            .ok_or(ClusterError::UnknownId(id.0))?;
        if let Some(vm) = self.vms.get_mut(&record.vm) {
            vm.release(record.milli_vcpus, record.mib);
        }
        Ok(())
    }

    /// Total idle vCPUs across VMs of `family`.
    pub fn idle_vcpus(&self, family: InstanceFamily) -> f64 {
        self.vms
            .values()
            .filter(|vm| vm.instance_type().family == family)
            .map(|vm| vm.free_milli_vcpus() as f64 / 1000.0)
            .sum()
    }

    /// Total idle memory in MiB across VMs of `family`.
    pub fn idle_memory_mib(&self, family: InstanceFamily) -> u64 {
        self.vms
            .values()
            .filter(|vm| vm.instance_type().family == family)
            .map(|vm| vm.free_mib() as u64)
            .sum()
    }

    /// Fraction of fleet vCPU capacity currently allocated (0 when empty).
    pub fn cpu_utilization(&self) -> f64 {
        let capacity: u64 = self
            .vms
            .values()
            .map(|vm| vm.capacity_milli_vcpus() as u64)
            .sum();
        if capacity == 0 {
            return 0.0;
        }
        let allocated: u64 = self
            .vms
            .values()
            .map(|vm| vm.allocated_milli_vcpus() as u64)
            .sum();
        allocated as f64 / capacity as f64
    }

    fn pick_vm(&self, family: InstanceFamily, milli_vcpus: u32, mib: u32) -> Option<VmId> {
        let fitting = self
            .vms
            .values()
            .filter(|vm| vm.instance_type().family == family && vm.fits(milli_vcpus, mib));
        match self.policy {
            PlacementPolicy::FirstFit => fitting.map(|vm| vm.id()).next(),
            PlacementPolicy::BestFit => fitting
                .min_by_key(|vm| (vm.free_milli_vcpus(), vm.id()))
                .map(|vm| vm.id()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_fleet_rejects_when_full() {
        let mut c = Cluster::new(PlacementPolicy::FirstFit);
        c.provision(InstanceFamily::M5, InstanceSize::Large); // 2 vCPU / 8 GiB
        let _a = c.place(InstanceFamily::M5, 2.0, 1024).unwrap();
        let err = c.place(InstanceFamily::M5, 0.25, 128).unwrap_err();
        assert!(matches!(err, ClusterError::InsufficientCapacity { .. }));
    }

    #[test]
    fn wrong_family_never_matches() {
        let mut c = Cluster::new(PlacementPolicy::FirstFit);
        c.provision(InstanceFamily::M5, InstanceSize::X4Large);
        assert!(c.place(InstanceFamily::C6g, 0.5, 128).is_err());
    }

    #[test]
    fn auto_provisioning_grows_fleet() {
        let mut c = Cluster::auto_provisioning(PlacementPolicy::FirstFit);
        assert_eq!(c.vm_count(), 0);
        let _s = c.place(InstanceFamily::C5a, 1.0, 512).unwrap();
        assert_eq!(c.vm_count(), 1);
        // 4xlarge has 16 vCPUs; a 16-vCPU request forces a second VM.
        let _big = c.place(InstanceFamily::C5a, 16.0, 512).unwrap();
        assert_eq!(c.vm_count(), 2);
    }

    #[test]
    fn best_fit_packs_tightly() {
        let mut c = Cluster::new(PlacementPolicy::BestFit);
        let _roomy = c.provision(InstanceFamily::M5, InstanceSize::X4Large);
        let snug = c.provision(InstanceFamily::M5, InstanceSize::Large);
        let sb = c.place(InstanceFamily::M5, 1.0, 512).unwrap();
        assert_eq!(c.sandbox_vm(sb).unwrap(), snug);
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let mut c = Cluster::new(PlacementPolicy::FirstFit);
        let first = c.provision(InstanceFamily::M5, InstanceSize::X4Large);
        let _second = c.provision(InstanceFamily::M5, InstanceSize::Large);
        let sb = c.place(InstanceFamily::M5, 1.0, 512).unwrap();
        assert_eq!(c.sandbox_vm(sb).unwrap(), first);
    }

    #[test]
    fn release_returns_capacity_and_rejects_double_free() {
        let mut c = Cluster::new(PlacementPolicy::FirstFit);
        c.provision(InstanceFamily::M6g, InstanceSize::Large);
        let sb = c.place(InstanceFamily::M6g, 1.5, 2048).unwrap();
        assert_eq!(c.idle_vcpus(InstanceFamily::M6g), 0.5);
        c.release(sb).unwrap();
        assert_eq!(c.idle_vcpus(InstanceFamily::M6g), 2.0);
        assert!(matches!(c.release(sb), Err(ClusterError::UnknownId(_))));
    }

    #[test]
    fn validates_requests() {
        let mut c = Cluster::auto_provisioning(PlacementPolicy::FirstFit);
        assert!(matches!(
            c.place(InstanceFamily::M5, 0.0, 128),
            Err(ClusterError::InvalidRequest(_))
        ));
        assert!(matches!(
            c.place(InstanceFamily::M5, 1.0, 0),
            Err(ClusterError::InvalidRequest(_))
        ));
    }

    #[test]
    fn utilization_tracks_allocations() {
        let mut c = Cluster::new(PlacementPolicy::FirstFit);
        assert_eq!(c.cpu_utilization(), 0.0);
        c.provision(InstanceFamily::C5, InstanceSize::Large);
        let _sb = c.place(InstanceFamily::C5, 1.0, 512).unwrap();
        assert!((c.cpu_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn idle_memory_per_family() {
        let mut c = Cluster::new(PlacementPolicy::FirstFit);
        c.provision(InstanceFamily::C5, InstanceSize::Large); // 4096 MiB
        let _sb = c.place(InstanceFamily::C5, 0.5, 1024).unwrap();
        assert_eq!(c.idle_memory_mib(InstanceFamily::C5), 3072);
        assert_eq!(c.idle_memory_mib(InstanceFamily::M5), 0);
    }
}

//! Deterministic virtual clock.

use std::fmt;

/// A deterministic virtual clock counting simulated nanoseconds.
///
/// Experiments never read wall-clock time; every timestamp flows from this
/// clock so that runs are reproducible for a fixed seed.
///
/// # Examples
///
/// ```
/// use freedom_cluster::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance_secs(1.5);
/// assert_eq!(clock.now_nanos(), 1_500_000_000);
/// assert!((clock.now_secs() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimClock {
    nanos: u128,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time in nanoseconds since simulation start.
    pub fn now_nanos(&self) -> u128 {
        self.nanos
    }

    /// Current time in (fractional) seconds since simulation start.
    pub fn now_secs(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Advances the clock by a number of seconds.
    ///
    /// Negative or non-finite durations are ignored — time never goes
    /// backwards in the simulation.
    pub fn advance_secs(&mut self, secs: f64) {
        if secs.is_finite() && secs > 0.0 {
            self.nanos += (secs * 1e9) as u128;
        }
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.now_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance_secs(0.25);
        c.advance_secs(0.75);
        assert_eq!(c.now_nanos(), 1_000_000_000);
    }

    #[test]
    fn rejects_time_travel() {
        let mut c = SimClock::new();
        c.advance_secs(1.0);
        c.advance_secs(-5.0);
        c.advance_secs(f64::NAN);
        assert_eq!(c.now_nanos(), 1_000_000_000);
    }

    #[test]
    fn display_formats_seconds() {
        let mut c = SimClock::new();
        c.advance_secs(2.5);
        assert_eq!(c.to_string(), "t=2.500000s");
    }
}

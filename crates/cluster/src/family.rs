//! Instance families, architectures, sizes, and capacities.
//!
//! Mirrors the Table 1 search space: families `c6g, m6g, c5, m5, c5a, m5a`
//! (prefix `c` = compute-optimized, `m` = general-purpose; suffix `g` =
//! Graviton2/ARM, `a` = AMD, none = Intel). The memory-optimized `r`
//! families are also modelled because §3.2 needs their prices to close the
//! per-vCPU/per-GB linear systems.

use std::fmt;
use std::str::FromStr;

use crate::ClusterError;

/// CPU architecture of an instance family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Architecture {
    /// Intel x86-64 (no family suffix, e.g. `m5`).
    IntelX86,
    /// AMD x86-64 (`a` suffix, e.g. `m5a`).
    Amd,
    /// AWS Graviton2 ARM (`g` suffix, e.g. `m6g`).
    Graviton2,
}

impl Architecture {
    /// All modelled architectures.
    pub const ALL: [Architecture; 3] = [
        Architecture::IntelX86,
        Architecture::Amd,
        Architecture::Graviton2,
    ];
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IntelX86 => write!(f, "intel"),
            Self::Amd => write!(f, "amd"),
            Self::Graviton2 => write!(f, "graviton2"),
        }
    }
}

/// Instance class, which fixes the memory:vCPU ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstanceClass {
    /// `c` prefix: 2 GiB of memory per vCPU, higher sustained clocks.
    ComputeOptimized,
    /// `m` prefix: 4 GiB of memory per vCPU.
    GeneralPurpose,
    /// `r` prefix: 8 GiB of memory per vCPU (pricing-only in this study).
    MemoryOptimized,
}

impl InstanceClass {
    /// GiB of memory per vCPU for this class.
    pub fn memory_per_vcpu_gib(self) -> f64 {
        match self {
            Self::ComputeOptimized => 2.0,
            Self::GeneralPurpose => 4.0,
            Self::MemoryOptimized => 8.0,
        }
    }
}

/// An EC2-style instance family (architecture × class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(clippy::upper_case_acronyms)]
pub enum InstanceFamily {
    /// Intel general-purpose.
    M5,
    /// Intel compute-optimized.
    C5,
    /// Intel memory-optimized (pricing-only).
    R5,
    /// AMD general-purpose.
    M5a,
    /// AMD compute-optimized.
    C5a,
    /// AMD memory-optimized (pricing-only).
    R5a,
    /// Graviton2 general-purpose.
    M6g,
    /// Graviton2 compute-optimized.
    C6g,
    /// Graviton2 memory-optimized (pricing-only).
    R6g,
}

impl InstanceFamily {
    /// The six families of the paper's search space (Table 1), in the
    /// paper's presentation order.
    pub const SEARCH_SPACE: [InstanceFamily; 6] = [
        InstanceFamily::C6g,
        InstanceFamily::M6g,
        InstanceFamily::C5,
        InstanceFamily::M5,
        InstanceFamily::C5a,
        InstanceFamily::M5a,
    ];

    /// All modelled families, including the pricing-only `r` classes.
    pub const ALL: [InstanceFamily; 9] = [
        InstanceFamily::M5,
        InstanceFamily::C5,
        InstanceFamily::R5,
        InstanceFamily::M5a,
        InstanceFamily::C5a,
        InstanceFamily::R5a,
        InstanceFamily::M6g,
        InstanceFamily::C6g,
        InstanceFamily::R6g,
    ];

    /// The family's CPU architecture.
    pub fn architecture(self) -> Architecture {
        match self {
            Self::M5 | Self::C5 | Self::R5 => Architecture::IntelX86,
            Self::M5a | Self::C5a | Self::R5a => Architecture::Amd,
            Self::M6g | Self::C6g | Self::R6g => Architecture::Graviton2,
        }
    }

    /// The family's instance class.
    pub fn class(self) -> InstanceClass {
        match self {
            Self::C5 | Self::C5a | Self::C6g => InstanceClass::ComputeOptimized,
            Self::M5 | Self::M5a | Self::M6g => InstanceClass::GeneralPurpose,
            Self::R5 | Self::R5a | Self::R6g => InstanceClass::MemoryOptimized,
        }
    }

    /// Whether this family is compute-optimized (`c` prefix).
    pub fn is_compute_optimized(self) -> bool {
        self.class() == InstanceClass::ComputeOptimized
    }
}

impl fmt::Display for InstanceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::M5 => "m5",
            Self::C5 => "c5",
            Self::R5 => "r5",
            Self::M5a => "m5a",
            Self::C5a => "c5a",
            Self::R5a => "r5a",
            Self::M6g => "m6g",
            Self::C6g => "c6g",
            Self::R6g => "r6g",
        };
        write!(f, "{name}")
    }
}

impl FromStr for InstanceFamily {
    type Err = ClusterError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "m5" => Ok(Self::M5),
            "c5" => Ok(Self::C5),
            "r5" => Ok(Self::R5),
            "m5a" => Ok(Self::M5a),
            "c5a" => Ok(Self::C5a),
            "r5a" => Ok(Self::R5a),
            "m6g" => Ok(Self::M6g),
            "c6g" => Ok(Self::C6g),
            "r6g" => Ok(Self::R6g),
            other => Err(ClusterError::UnknownFamily(other.to_string())),
        }
    }
}

/// Instance size (the `.large`, `.xlarge`, … suffix), which scales vCPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InstanceSize {
    /// 2 vCPUs.
    Large,
    /// 4 vCPUs.
    XLarge,
    /// 8 vCPUs.
    X2Large,
    /// 16 vCPUs.
    X4Large,
}

impl InstanceSize {
    /// Number of vCPUs at this size.
    pub fn vcpus(self) -> u32 {
        match self {
            Self::Large => 2,
            Self::XLarge => 4,
            Self::X2Large => 8,
            Self::X4Large => 16,
        }
    }
}

impl fmt::Display for InstanceSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Large => "large",
            Self::XLarge => "xlarge",
            Self::X2Large => "2xlarge",
            Self::X4Large => "4xlarge",
        };
        write!(f, "{name}")
    }
}

/// A concrete instance type: family plus size.
///
/// # Examples
///
/// ```
/// use freedom_cluster::{InstanceFamily, InstanceSize, InstanceType};
///
/// let it = InstanceType::new(InstanceFamily::C5, InstanceSize::Large);
/// assert_eq!(it.vcpus(), 2);
/// assert_eq!(it.memory_mib(), 4096);
/// assert_eq!(it.to_string(), "c5.large");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceType {
    /// Instance family.
    pub family: InstanceFamily,
    /// Instance size.
    pub size: InstanceSize,
}

impl InstanceType {
    /// Creates an instance type.
    pub fn new(family: InstanceFamily, size: InstanceSize) -> Self {
        Self { family, size }
    }

    /// vCPU count.
    pub fn vcpus(self) -> u32 {
        self.size.vcpus()
    }

    /// Memory capacity in MiB (class ratio × vCPUs).
    pub fn memory_mib(self) -> u32 {
        (self.family.class().memory_per_vcpu_gib() * self.vcpus() as f64 * 1024.0) as u32
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.family, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_space_matches_table_1() {
        assert_eq!(InstanceFamily::SEARCH_SPACE.len(), 6);
        // No pricing-only r families in the search space.
        assert!(InstanceFamily::SEARCH_SPACE
            .iter()
            .all(|f| f.class() != InstanceClass::MemoryOptimized));
        // Two families per architecture.
        for arch in Architecture::ALL {
            let n = InstanceFamily::SEARCH_SPACE
                .iter()
                .filter(|f| f.architecture() == arch)
                .count();
            assert_eq!(n, 2, "{arch} should contribute two families");
        }
    }

    #[test]
    fn family_taxonomy() {
        assert_eq!(InstanceFamily::M6g.architecture(), Architecture::Graviton2);
        assert_eq!(InstanceFamily::C5a.architecture(), Architecture::Amd);
        assert_eq!(InstanceFamily::R5.architecture(), Architecture::IntelX86);
        assert!(InstanceFamily::C5.is_compute_optimized());
        assert!(!InstanceFamily::M5a.is_compute_optimized());
    }

    #[test]
    fn parse_round_trips() {
        for fam in InstanceFamily::ALL {
            let s = fam.to_string();
            assert_eq!(s.parse::<InstanceFamily>().unwrap(), fam);
        }
        assert!(matches!(
            "z9".parse::<InstanceFamily>(),
            Err(ClusterError::UnknownFamily(_))
        ));
    }

    #[test]
    fn capacities_follow_class_ratio() {
        let m5l = InstanceType::new(InstanceFamily::M5, InstanceSize::Large);
        assert_eq!(m5l.vcpus(), 2);
        assert_eq!(m5l.memory_mib(), 8192);
        let c6g4 = InstanceType::new(InstanceFamily::C6g, InstanceSize::X4Large);
        assert_eq!(c6g4.vcpus(), 16);
        assert_eq!(c6g4.memory_mib(), 32768);
        let r5x = InstanceType::new(InstanceFamily::R5, InstanceSize::XLarge);
        assert_eq!(r5x.memory_mib(), 32768);
    }

    #[test]
    fn display_formats() {
        let it = InstanceType::new(InstanceFamily::M5a, InstanceSize::X2Large);
        assert_eq!(it.to_string(), "m5a.2xlarge");
        assert_eq!(Architecture::Graviton2.to_string(), "graviton2");
    }
}

//! Error type for the cluster substrate.

use std::fmt;

/// Errors produced by cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The requested instance-family name is not modelled.
    UnknownFamily(String),
    /// No VM of the requested family has enough free capacity and the
    /// cluster is not allowed to provision more.
    InsufficientCapacity {
        /// Family that was requested.
        family: String,
        /// vCPU share requested.
        cpu_share_milli: u32,
        /// Memory requested in MiB.
        memory_mib: u32,
    },
    /// The sandbox or VM id is not (or no longer) known.
    UnknownId(u64),
    /// A resource request was invalid (zero/negative share, zero memory, or
    /// larger than any single VM of the family).
    InvalidRequest(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownFamily(name) => write!(f, "unknown instance family: {name}"),
            Self::InsufficientCapacity {
                family,
                cpu_share_milli,
                memory_mib,
            } => write!(
                f,
                "insufficient capacity on {family} for {} vCPU / {memory_mib} MiB",
                *cpu_share_milli as f64 / 1000.0
            ),
            Self::UnknownId(id) => write!(f, "unknown sandbox or VM id: {id}"),
            Self::InvalidRequest(msg) => write!(f, "invalid resource request: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ClusterError::InsufficientCapacity {
            family: "m5".into(),
            cpu_share_milli: 1500,
            memory_mib: 2048,
        };
        assert!(e.to_string().contains("m5"));
        assert!(e.to_string().contains("1.5 vCPU"));
        assert!(e.to_string().contains("2048 MiB"));
    }
}

//! Simulated EC2-style cluster substrate.
//!
//! The paper runs OpenFaaS on k3s across six AWS EC2 instance families
//! (Table 1) and controls each function's resources with cgroups: a CPU
//! *share* (CFS bandwidth control) and a memory *limit* (OOM on breach).
//! This crate reproduces exactly the mechanisms the study relies on:
//!
//! - the instance-family taxonomy (architecture × class) and capacities,
//! - cgroup-style CPU-share and memory-limit accounting ([`cgroup`]),
//! - VM-level resource allocation and sandbox placement ([`Vm`], [`Cluster`]),
//! - idle-capacity queries per family, used by the §6.2 provider planner,
//! - a deterministic virtual clock ([`SimClock`]).
//!
//! # Examples
//!
//! ```
//! use freedom_cluster::{Cluster, InstanceFamily, InstanceSize, PlacementPolicy};
//!
//! let mut cluster = Cluster::new(PlacementPolicy::FirstFit);
//! cluster.provision(InstanceFamily::M5, InstanceSize::XLarge);
//! let sandbox = cluster.place(InstanceFamily::M5, 1.0, 1024).unwrap();
//! assert_eq!(cluster.idle_vcpus(InstanceFamily::M5), 3.0);
//! cluster.release(sandbox).unwrap();
//! assert_eq!(cluster.idle_vcpus(InstanceFamily::M5), 4.0);
//! ```

pub mod cgroup;
mod clock;
mod cluster_impl;
mod error;
mod family;
mod vm;

pub use cgroup::{CpuCgroup, MemCgroup, OomKill};
pub use clock::SimClock;
pub use cluster_impl::{Cluster, PlacementPolicy, SandboxId};
pub use error::ClusterError;
pub use family::{Architecture, InstanceClass, InstanceFamily, InstanceSize, InstanceType};
pub use vm::{Vm, VmId};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

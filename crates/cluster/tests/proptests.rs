//! Property-based tests: the cluster never oversubscribes and accounting
//! round-trips.

use freedom_cluster::{Cluster, InstanceFamily, InstanceSize, PlacementPolicy};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Place { share_milli: u32, mib: u32 },
    ReleaseOldest,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (250u32..4000, 64u32..4096).prop_map(|(share_milli, mib)| Op::Place { share_milli, mib }),
        Just(Op::ReleaseOldest),
    ]
}

proptest! {
    #[test]
    fn capacity_is_never_oversubscribed(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut cluster = Cluster::new(PlacementPolicy::FirstFit);
        cluster.provision(InstanceFamily::M5, InstanceSize::XLarge);
        cluster.provision(InstanceFamily::M5, InstanceSize::Large);
        let mut live = Vec::new();
        for op in ops {
            match op {
                Op::Place { share_milli, mib } => {
                    if let Ok(id) = cluster.place(
                        InstanceFamily::M5,
                        share_milli as f64 / 1000.0,
                        mib,
                    ) {
                        live.push(id);
                    }
                }
                Op::ReleaseOldest => {
                    if !live.is_empty() {
                        let id = live.remove(0);
                        cluster.release(id).unwrap();
                    }
                }
            }
            // Invariant: utilization stays within [0, 1] on every step.
            let u = cluster.cpu_utilization();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&u), "utilization {u}");
        }
        // Releasing everything returns the fleet to fully idle.
        for id in live {
            cluster.release(id).unwrap();
        }
        prop_assert_eq!(cluster.cpu_utilization(), 0.0);
        prop_assert_eq!(cluster.idle_vcpus(InstanceFamily::M5), 6.0);
        prop_assert_eq!(cluster.sandbox_count(), 0);
    }

    #[test]
    fn auto_provisioning_always_places_valid_requests(
        requests in prop::collection::vec((250u32..4000, 64u32..4096), 1..40),
    ) {
        let mut cluster = Cluster::auto_provisioning(PlacementPolicy::BestFit);
        for (share_milli, mib) in requests {
            let res = cluster.place(InstanceFamily::C6g, share_milli as f64 / 1000.0, mib);
            prop_assert!(res.is_ok());
        }
        let u = cluster.cpu_utilization();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&u));
    }
}

//! The resource-configuration search space (Table 1).

use freedom_cluster::{Architecture, InstanceFamily};
use freedom_faas::ResourceConfig;

use crate::{OptimizerError, Result};

/// The eight CPU-share options of Table 1.
pub const CPU_SHARES: [f64; 8] = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0];

/// The six memory-limit options of Table 1, in MiB.
pub const MEMORY_MIB: [u32; 6] = [128, 256, 512, 768, 1024, 2048];

/// A finite search space of resource configurations.
///
/// Supports the §5.1 *slicing* adaptation: every time the platform reports
/// an OOM at memory `m`, all configurations with memory ≤ `m` are removed
/// ("if a function fails for a certain memory limit, it is very likely to
/// continue to fail with a lower memory limit").
///
/// # Examples
///
/// ```
/// use freedom_optimizer::SearchSpace;
///
/// let mut space = SearchSpace::table1();
/// assert_eq!(space.len(), 288);
/// let removed = space.slice_failed_memory(256);
/// // 2 of 6 memory levels are gone: a third of the space.
/// assert_eq!(removed, 96);
/// assert_eq!(space.len(), 192);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    configs: Vec<ResourceConfig>,
    /// Highest memory level known to OOM (sticky across slices).
    failed_memory_mib: Option<u32>,
}

impl SearchSpace {
    /// The paper's full Decoupled space: 8 × 6 × 6 = 288 configurations.
    pub fn table1() -> Self {
        Self::custom(&CPU_SHARES, &MEMORY_MIB, &InstanceFamily::SEARCH_SPACE)
    }

    /// The Decoupled (m5) strategy: all shares and memories, m5 only.
    pub fn decoupled_m5() -> Self {
        Self::custom(&CPU_SHARES, &MEMORY_MIB, &[InstanceFamily::M5])
    }

    /// A space from explicit axis values (duplicates are removed).
    pub fn custom(shares: &[f64], memories: &[u32], families: &[InstanceFamily]) -> Self {
        let mut configs = Vec::with_capacity(shares.len() * memories.len() * families.len());
        for &family in families {
            for &share in shares {
                for &mem in memories {
                    if let Some(cfg) = ResourceConfig::new(family, share, mem) {
                        configs.push(cfg);
                    }
                }
            }
        }
        configs.sort();
        configs.dedup();
        Self {
            configs,
            failed_memory_mib: None,
        }
    }

    /// A space from an explicit configuration list.
    pub fn from_configs(configs: Vec<ResourceConfig>) -> Self {
        let mut configs = configs;
        configs.sort();
        configs.dedup();
        Self {
            configs,
            failed_memory_mib: None,
        }
    }

    /// The configurations currently in the space.
    pub fn configs(&self) -> &[ResourceConfig] {
        &self.configs
    }

    /// Number of configurations left.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the space is empty (e.g. fully sliced away).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Whether a configuration is in the space.
    pub fn contains(&self, config: &ResourceConfig) -> bool {
        self.configs.binary_search(config).is_ok()
    }

    /// Restricts the space to one instance family (used by the §6.2
    /// per-family prediction scenario).
    pub fn restrict_to_family(&self, family: InstanceFamily) -> Self {
        Self {
            configs: self
                .configs
                .iter()
                .copied()
                .filter(|c| c.family() == family)
                .collect(),
            failed_memory_mib: self.failed_memory_mib,
        }
    }

    /// §5.1 slicing: removes every configuration with memory ≤
    /// `failed_mem_mib`; returns how many were removed.
    pub fn slice_failed_memory(&mut self, failed_mem_mib: u32) -> usize {
        let before = self.configs.len();
        self.configs.retain(|c| c.memory_mib() > failed_mem_mib);
        self.failed_memory_mib = Some(
            self.failed_memory_mib
                .map_or(failed_mem_mib, |m| m.max(failed_mem_mib)),
        );
        before - self.configs.len()
    }

    /// The highest memory level known to have failed, if any.
    pub fn failed_memory_mib(&self) -> Option<u32> {
        self.failed_memory_mib
    }

    /// Encodes a configuration as surrogate features:
    /// `[cpu_share, log2(memory_mib), intel, amd, graviton, compute_flag]`.
    ///
    /// The one-hot architecture encoding plus a compute-optimized flag
    /// captures the family axis without imposing a fake ordering on it.
    pub fn encode(config: &ResourceConfig) -> Vec<f64> {
        let arch = config.family().architecture();
        vec![
            config.cpu_share(),
            (config.memory_mib() as f64).log2(),
            f64::from(arch == Architecture::IntelX86),
            f64::from(arch == Architecture::Amd),
            f64::from(arch == Architecture::Graviton2),
            f64::from(config.family().is_compute_optimized()),
        ]
    }

    /// Feature dimensionality of [`Self::encode`].
    pub const ENCODED_DIM: usize = 6;

    /// Returns the configuration at `idx`.
    ///
    /// Returns [`OptimizerError::EmptySearchSpace`] when out of range (the
    /// space shrank under the caller).
    pub fn get(&self, idx: usize) -> Result<ResourceConfig> {
        self.configs
            .get(idx)
            .copied()
            .ok_or(OptimizerError::EmptySearchSpace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_288_configs() {
        let s = SearchSpace::table1();
        assert_eq!(s.len(), 288);
        assert_eq!(s.len(), CPU_SHARES.len() * MEMORY_MIB.len() * 6);
        assert!(!s.is_empty());
    }

    #[test]
    fn decoupled_m5_is_one_family_slice() {
        let s = SearchSpace::decoupled_m5();
        assert_eq!(s.len(), 48);
        assert!(s.configs().iter().all(|c| c.family() == InstanceFamily::M5));
    }

    #[test]
    fn slicing_removes_exactly_the_low_memory_levels() {
        let mut s = SearchSpace::table1();
        assert_eq!(s.slice_failed_memory(128), 48);
        assert_eq!(s.len(), 240);
        // Slicing at the same level again removes nothing.
        assert_eq!(s.slice_failed_memory(128), 0);
        // A higher failure slices more and the watermark is sticky.
        assert_eq!(s.slice_failed_memory(512), 96);
        assert_eq!(s.failed_memory_mib(), Some(512));
        assert!(s.configs().iter().all(|c| c.memory_mib() > 512));
        // A lower failure later cannot lower the watermark.
        s.slice_failed_memory(128);
        assert_eq!(s.failed_memory_mib(), Some(512));
    }

    #[test]
    fn slicing_everything_empties_the_space() {
        let mut s = SearchSpace::table1();
        s.slice_failed_memory(2048);
        assert!(s.is_empty());
        assert!(matches!(s.get(0), Err(OptimizerError::EmptySearchSpace)));
    }

    #[test]
    fn restrict_to_family_keeps_48() {
        let s = SearchSpace::table1();
        for family in InstanceFamily::SEARCH_SPACE {
            let r = s.restrict_to_family(family);
            assert_eq!(r.len(), 48);
            assert!(r.configs().iter().all(|c| c.family() == family));
        }
    }

    #[test]
    fn encoding_is_six_dimensional_one_hot() {
        let cfg = ResourceConfig::new(InstanceFamily::C6g, 1.5, 512).unwrap();
        let f = SearchSpace::encode(&cfg);
        assert_eq!(f.len(), SearchSpace::ENCODED_DIM);
        assert_eq!(f[0], 1.5);
        assert_eq!(f[1], 9.0); // log2(512)
        assert_eq!(&f[2..5], &[0.0, 0.0, 1.0]);
        assert_eq!(f[5], 1.0);
        // Exactly one architecture bit is set for every config.
        for c in SearchSpace::table1().configs() {
            let e = SearchSpace::encode(c);
            assert_eq!(e[2] + e[3] + e[4], 1.0);
        }
    }

    #[test]
    fn contains_and_dedup() {
        let cfg = ResourceConfig::new(InstanceFamily::M5, 1.0, 512).unwrap();
        let s = SearchSpace::from_configs(vec![cfg, cfg]);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&cfg));
        let other = ResourceConfig::new(InstanceFamily::M5, 1.0, 256).unwrap();
        assert!(!s.contains(&other));
    }
}

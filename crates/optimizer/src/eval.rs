//! Prediction-error evaluation (§5.5, Figures 9 and 10).
//!
//! After an optimization run, the fitted surrogate can predict the
//! objective for *untested* configurations. The paper evaluates this with
//! MAPE in two scenarios: over the whole feasible search space (Figure 9),
//! and over the best predicted configuration of each instance family
//! (Figure 10) — the quantity the §6.2 provider planner relies on.

use freedom_cluster::InstanceFamily;
use freedom_faas::{PerfTable, ResourceConfig};
use freedom_linalg::stats;
use freedom_surrogates::Surrogate;

use crate::{Objective, OptimizerError, Result, SearchSpace};

/// The actual objective value of a table point under Eq. 2 normalizers.
fn actual_value(
    table: &PerfTable,
    config: &ResourceConfig,
    objective: Objective,
    bt: f64,
    bc: f64,
) -> Option<f64> {
    let p = table.lookup(config)?;
    if p.failed {
        return None;
    }
    Some(objective.value_of(p.exec_time_secs, p.exec_cost_usd, bt, bc))
}

/// Ground-truth Eq. 2 normalizers: the best feasible time and cost in the
/// table.
pub fn table_normalizers(table: &PerfTable) -> (f64, f64) {
    let bt = table
        .best_by_time()
        .map(|p| p.exec_time_secs)
        .unwrap_or(1.0);
    let bc = table.best_by_cost().map(|p| p.exec_cost_usd).unwrap_or(1.0);
    (bt, bc)
}

/// Scenario 1 (Figure 9): MAPE of the surrogate across every feasible
/// configuration of the space.
///
/// Returns [`OptimizerError::InvalidArgument`] when no feasible
/// configuration exists.
pub fn mape_over_space(
    model: &dyn Surrogate,
    space: &SearchSpace,
    table: &PerfTable,
    objective: Objective,
) -> Result<f64> {
    let (bt, bc) = table_normalizers(table);
    let mut actual = Vec::new();
    let mut features = Vec::new();
    for config in space.configs() {
        if let Some(a) = actual_value(table, config, objective, bt, bc) {
            actual.push(a);
            features.push(SearchSpace::encode(config));
        }
    }
    let predicted: Vec<f64> = model
        .predict_batch(&features)?
        .into_iter()
        .map(|p| p.mean)
        .collect();
    stats::mape(&actual, &predicted).ok_or_else(|| {
        OptimizerError::InvalidArgument("no feasible configurations to score".into())
    })
}

/// One family's best *predicted* configuration, with its predicted and
/// actual objective values (Figure 10's per-family comparison).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyBest {
    /// Instance family.
    pub family: InstanceFamily,
    /// Configuration the model believes is this family's best.
    pub config: ResourceConfig,
    /// Model-predicted objective value there.
    pub predicted: f64,
    /// Ground-truth objective value there.
    pub actual: f64,
}

/// Scenario 2 (Figure 10): for each family, the configuration with the
/// best predicted objective among the family's feasible configurations.
pub fn best_predicted_per_family(
    model: &dyn Surrogate,
    space: &SearchSpace,
    table: &PerfTable,
    objective: Objective,
) -> Result<Vec<FamilyBest>> {
    best_predicted_per_family_with(model, space, table, objective, 0.0)
}

/// Like [`best_predicted_per_family`] but scoring candidates by the
/// conservative `mean + beta·std` upper bound.
///
/// A positive `beta` makes selections risk-aware: configurations far from
/// the training trials carry large predictive uncertainty and are skipped
/// in favour of ones whose predictions can be trusted — what a provider
/// needs for the §6.2 performance guardrail. `beta = 0` reduces to plain
/// mean selection. The reported `predicted` value is the same conservative
/// bound used for selection.
pub fn best_predicted_per_family_with(
    model: &dyn Surrogate,
    space: &SearchSpace,
    table: &PerfTable,
    objective: Objective,
    beta: f64,
) -> Result<Vec<FamilyBest>> {
    let (bt, bc) = table_normalizers(table);
    let mut out = Vec::new();
    for family in InstanceFamily::SEARCH_SPACE {
        // Batch the family's feasible configs through one predictor call.
        let mut candidates = Vec::new();
        let mut features = Vec::new();
        for config in space.configs().iter().filter(|c| c.family() == family) {
            let Some(actual) = actual_value(table, config, objective, bt, bc) else {
                continue;
            };
            candidates.push((*config, actual));
            features.push(SearchSpace::encode(config));
        }
        let predictions = model.predict_batch(&features)?;
        let mut best: Option<FamilyBest> = None;
        for ((config, actual), p) in candidates.into_iter().zip(predictions) {
            let predicted = p.mean + beta * p.std;
            let better = best.map(|b| predicted < b.predicted).unwrap_or(true);
            if better {
                best = Some(FamilyBest {
                    family,
                    config,
                    predicted,
                    actual,
                });
            }
        }
        if let Some(b) = best {
            out.push(b);
        }
    }
    Ok(out)
}

/// MAPE between predicted and actual values over the per-family bests.
pub fn mape_per_family_best(
    model: &dyn Surrogate,
    space: &SearchSpace,
    table: &PerfTable,
    objective: Objective,
) -> Result<f64> {
    let bests = best_predicted_per_family(model, space, table, objective)?;
    let actual: Vec<f64> = bests.iter().map(|b| b.actual).collect();
    let predicted: Vec<f64> = bests.iter().map(|b| b.predicted).collect();
    stats::mape(&actual, &predicted).ok_or_else(|| {
        OptimizerError::InvalidArgument("no feasible per-family configurations".into())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom_faas::PerfPoint;
    use freedom_surrogates::Prediction;
    use freedom_workloads::{FunctionKind, InputId};

    /// A fake surrogate that predicts `scale ×` the true time of the
    /// matching table point (injected via closure-free lookup).
    struct Oracle {
        table: PerfTable,
        scale: f64,
    }

    impl Surrogate for Oracle {
        fn fit(&mut self, _x: &[Vec<f64>], _y: &[f64]) -> freedom_surrogates::Result<()> {
            Ok(())
        }
        fn predict(&self, point: &[f64]) -> freedom_surrogates::Result<Prediction> {
            // Decode enough of the features to find the config again.
            let share = point[0];
            let mem = (2f64).powf(point[1]).round() as u32;
            let p = self
                .table
                .points()
                .iter()
                .find(|p| {
                    (p.config.cpu_share() - share).abs() < 1e-9 && p.config.memory_mib() == mem
                })
                .expect("config exists");
            Ok(Prediction {
                mean: p.exec_time_secs * self.scale,
                std: 0.0,
            })
        }
        fn name(&self) -> &'static str {
            "oracle"
        }
    }

    fn tiny_table() -> (SearchSpace, PerfTable) {
        let space = SearchSpace::custom(
            &[0.5, 1.0],
            &[256, 512],
            &[freedom_cluster::InstanceFamily::M5],
        );
        let points: Vec<PerfPoint> = space
            .configs()
            .iter()
            .map(|&config| PerfPoint {
                config,
                failed: false,
                exec_time_secs: 10.0 / config.cpu_share(),
                exec_cost_usd: 1e-5 * config.memory_mib() as f64,
                peak_mem_mib: Some(config.memory_mib() / 2),
                reps: 5,
            })
            .collect();
        (
            space,
            PerfTable::from_points(FunctionKind::S3, InputId("x".into()), points),
        )
    }

    #[test]
    fn perfect_oracle_has_zero_mape() {
        let (space, table) = tiny_table();
        let model = Oracle {
            table: table.clone(),
            scale: 1.0,
        };
        let m = mape_over_space(&model, &space, &table, Objective::ExecutionTime).unwrap();
        assert!(m.abs() < 1e-9);
    }

    #[test]
    fn biased_oracle_has_exact_mape() {
        let (space, table) = tiny_table();
        let model = Oracle {
            table: table.clone(),
            scale: 1.2,
        };
        let m = mape_over_space(&model, &space, &table, Objective::ExecutionTime).unwrap();
        assert!((m - 20.0).abs() < 1e-9, "mape {m}");
    }

    #[test]
    fn per_family_best_picks_predicted_minimum() {
        let (space, table) = tiny_table();
        let model = Oracle {
            table: table.clone(),
            scale: 1.0,
        };
        let bests =
            best_predicted_per_family(&model, &space, &table, Objective::ExecutionTime).unwrap();
        // Only m5 exists in this space; its best is share 1.0.
        assert_eq!(bests.len(), 1);
        assert_eq!(bests[0].config.cpu_share(), 1.0);
        let m = mape_per_family_best(&model, &space, &table, Objective::ExecutionTime).unwrap();
        assert!(m.abs() < 1e-9);
    }

    #[test]
    fn all_failed_table_is_an_error() {
        let (space, table) = tiny_table();
        let failed_points: Vec<PerfPoint> = table
            .points()
            .iter()
            .map(|p| PerfPoint {
                failed: true,
                ..p.clone()
            })
            .collect();
        let failed_table =
            PerfTable::from_points(FunctionKind::S3, InputId("x".into()), failed_points);
        let model = Oracle { table, scale: 1.0 };
        assert!(mape_over_space(&model, &space, &failed_table, Objective::ExecutionTime).is_err());
        assert!(
            mape_per_family_best(&model, &space, &failed_table, Objective::ExecutionTime).is_err()
        );
    }

    #[test]
    fn normalizers_come_from_table_bests() {
        let (_space, table) = tiny_table();
        let (bt, bc) = table_normalizers(&table);
        assert_eq!(bt, 10.0); // share 1.0 → 10 s
        assert!((bc - 1e-5 * 256.0).abs() < 1e-15);
    }
}

//! Pareto-front extraction and the Figure 11 distance metric (§6.1).
//!
//! The paper's Pareto-front interface predicts a front from two trained
//! models (one per objective) and evaluates it by measuring, for each
//! predicted-front configuration, the distance to the *nearest* actual
//! front configuration — split into an execution-time component `d_t` and
//! an execution-cost component `d_c`, each normalized by the nearest
//! actual configuration's objective value.

/// A point in (execution time, execution cost) space.
pub type BiPoint = (f64, f64);

/// Indices of the non-dominated points (minimization in both objectives).
///
/// A point dominates another when it is no worse in both coordinates and
/// strictly better in at least one. Duplicate coordinates stay in the
/// front together.
///
/// # Examples
///
/// ```
/// use freedom_optimizer::pareto::pareto_front_indices;
///
/// let pts = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0), (3.0, 3.0)];
/// assert_eq!(pareto_front_indices(&pts), vec![0, 1, 2]);
/// ```
pub fn pareto_front_indices(points: &[BiPoint]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, &(ti, ci)) in points.iter().enumerate() {
        for (j, &(tj, cj)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let no_worse = tj <= ti && cj <= ci;
            let strictly_better = tj < ti || cj < ci;
            if no_worse && strictly_better {
                continue 'outer; // i is dominated by j
            }
        }
        front.push(i);
    }
    front
}

/// The non-dominated subset itself, sorted by the first coordinate.
pub fn pareto_front(points: &[BiPoint]) -> Vec<BiPoint> {
    let mut front: Vec<BiPoint> = pareto_front_indices(points)
        .into_iter()
        .map(|i| points[i])
        .collect();
    front.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    front.dedup();
    front
}

/// Average normalized distances between a predicted front and the actual
/// front, per Figure 11: for each predicted configuration, find the
/// nearest actual-front configuration (in objective space normalized by
/// the actual front's ranges) and accumulate
/// `d_t = |t_pred − t_near| / t_near` and `d_c = |c_pred − c_near| / c_near`.
///
/// Returns `None` when either front is empty or an actual coordinate is
/// non-positive (normalization would be meaningless).
pub fn front_distance(predicted: &[BiPoint], actual: &[BiPoint]) -> Option<(f64, f64)> {
    if predicted.is_empty() || actual.is_empty() {
        return None;
    }
    if actual.iter().any(|&(t, c)| t <= 0.0 || c <= 0.0) {
        return None;
    }
    // Normalize by the actual front's spans so "nearest" is scale-free.
    let t_min = actual.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let t_max = actual.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let c_min = actual.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let c_max = actual.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let t_span = if t_max - t_min > 1e-12 {
        t_max - t_min
    } else {
        1.0
    };
    let c_span = if c_max - c_min > 1e-12 {
        c_max - c_min
    } else {
        1.0
    };

    let mut sum_dt = 0.0;
    let mut sum_dc = 0.0;
    for &(tp, cp) in predicted {
        let nearest = actual
            .iter()
            .min_by(|a, b| {
                let da = ((tp - a.0) / t_span).powi(2) + ((cp - a.1) / c_span).powi(2);
                let db = ((tp - b.0) / t_span).powi(2) + ((cp - b.1) / c_span).powi(2);
                da.total_cmp(&db)
            })
            .expect("actual front is non-empty");
        sum_dt += (tp - nearest.0).abs() / nearest.0;
        sum_dc += (cp - nearest.1).abs() / nearest.1;
    }
    let n = predicted.len() as f64;
    Some((sum_dt / n, sum_dc / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_of_a_chain_is_everything() {
        // Strictly trading-off points: all non-dominated.
        let pts = [(1.0, 5.0), (2.0, 4.0), (3.0, 3.0), (4.0, 2.0), (5.0, 1.0)];
        assert_eq!(pareto_front_indices(&pts).len(), 5);
    }

    #[test]
    fn dominated_points_are_excluded() {
        let pts = [(1.0, 1.0), (2.0, 2.0), (0.5, 3.0), (3.0, 0.5)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![(0.5, 3.0), (1.0, 1.0), (3.0, 0.5)]);
    }

    #[test]
    fn duplicates_survive_in_front_indices() {
        let pts = [(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_front_indices(&pts), vec![0, 1]);
        // But the sorted front deduplicates coordinates.
        assert_eq!(pareto_front(&pts).len(), 1);
    }

    #[test]
    fn perfect_prediction_has_zero_distance() {
        let actual = [(1.0, 4.0), (2.0, 2.0), (4.0, 1.0)];
        let (dt, dc) = front_distance(&actual, &actual).unwrap();
        assert_eq!(dt, 0.0);
        assert_eq!(dc, 0.0);
    }

    #[test]
    fn distance_matches_hand_computation() {
        let actual = [(10.0, 1.0)];
        let predicted = [(12.0, 1.5)];
        let (dt, dc) = front_distance(&predicted, &actual).unwrap();
        assert!((dt - 0.2).abs() < 1e-12);
        assert!((dc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nearest_point_selection_uses_normalized_space() {
        // Actual front spans wildly different scales; the time axis must
        // not drown out cost when picking "nearest".
        let actual = [(100.0, 0.001), (200.0, 0.0001)];
        let predicted = [(205.0, 0.0001)];
        let (dt, _dc) = front_distance(&predicted, &actual).unwrap();
        // Nearest must be the (200, 0.0001) point → dt = 5/200.
        assert!((dt - 0.025).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(front_distance(&[], &[(1.0, 1.0)]).is_none());
        assert!(front_distance(&[(1.0, 1.0)], &[]).is_none());
        assert!(front_distance(&[(1.0, 1.0)], &[(0.0, 1.0)]).is_none());
    }

    #[test]
    fn front_size_matches_paper_scale() {
        // The paper reports fronts of 2-10 configurations; sanity check on
        // a random-ish cloud.
        let pts: Vec<BiPoint> = (0..50)
            .map(|i| {
                let t = 1.0 + (i as f64 * 7.3) % 10.0;
                let c = 1.0 + (i as f64 * 3.7) % 8.0;
                (t, c)
            })
            .collect();
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        assert!(front.len() <= 12);
    }
}

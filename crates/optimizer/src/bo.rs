//! Bayesian optimization with Expected Improvement (§5.1–§5.2).
//!
//! The loop mirrors scikit-optimize's `gp_minimize` family as the paper
//! uses it: 3 random initial samples bootstrap the surrogate, then each
//! step fits the surrogate on all feasible trials and evaluates the
//! configuration with the highest Expected Improvement among the untested
//! ones. OOM failures trigger the serverless adaptation of §5.1: instead
//! of assigning a large penalty (which creates a non-smooth objective),
//! the search space is *sliced*, removing every configuration whose memory
//! is at or below the failing limit.

use std::collections::HashSet;

use freedom_faas::ResourceConfig;
use freedom_linalg::normal;
use freedom_surrogates::{Surrogate, SurrogateKind};

use crate::{
    Evaluator, Objective, OptimizerError, RandomSearch, Result, Sampler, SearchSpace, Trial,
};

/// Which acquisition function guides the surrogate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquisition {
    /// Expected Improvement with relative exploration bonus ξ (the
    /// paper's choice, via skopt).
    ExpectedImprovement,
    /// Lower confidence bound `μ − κ·σ` (minimization), an ablation
    /// alternative with an explicit exploration weight.
    LowerConfidenceBound {
        /// Exploration weight κ (skopt default: 1.96).
        kappa: f64,
    },
}

/// How function failures feed back into the optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureHandling {
    /// §5.1: slice all configurations with memory ≤ the failing limit out
    /// of the search space (the paper's choice).
    Slice,
    /// Assign the failure a large objective value (the paper's rejected
    /// first attempt; kept for the ablation study).
    Penalty(f64),
}

/// Bayesian-optimization settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoConfig {
    /// Random samples used to bootstrap the surrogate (paper default: 3).
    pub n_initial: usize,
    /// Total evaluation budget including initial samples (paper: 20).
    pub budget: usize,
    /// EI exploration bonus ξ, *relative* to the incumbent's magnitude.
    ///
    /// scikit-optimize applies an absolute ξ to normalized targets; since
    /// our surrogates normalize internally, the equivalent here is scaling
    /// ξ by `|best|` — objectives measured in microdollars then explore
    /// exactly like objectives measured in seconds.
    pub xi: f64,
    /// Acquisition function.
    pub acquisition: Acquisition,
    /// Failure feedback mode.
    pub failure_handling: FailureHandling,
    /// Seed for initial samples and surrogate randomness.
    pub seed: u64,
    /// Full hyperparameter-search cadence for surrogates with a warm
    /// refit path (the GP): a full candidate search every `refit_every`-th
    /// step, incremental updates in between. 1 = the naive from-scratch
    /// behavior at every step.
    pub surrogate_refit_every: usize,
}

impl Default for BoConfig {
    fn default() -> Self {
        Self {
            n_initial: 3,
            budget: 20,
            xi: 0.01,
            acquisition: Acquisition::ExpectedImprovement,
            failure_handling: FailureHandling::Slice,
            seed: 0,
            surrogate_refit_every: 4,
        }
    }
}

/// The complete history of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationRun {
    /// Objective that was optimized.
    pub objective: Objective,
    /// Every evaluated trial, in order.
    pub trials: Vec<Trial>,
    /// Best feasible objective value after each trial (∞ before the first
    /// feasible one). Weighted objectives are normalized with the run's
    /// final `B_t`/`B_c`, so the curve is monotone non-increasing.
    pub best_value_by_step: Vec<f64>,
    /// How many configurations §5.1 slicing removed during the run.
    pub sliced_away: usize,
}

impl OptimizationRun {
    /// The Eq. 2 normalizers observed in this run: best (minimum) feasible
    /// execution time and cost. Falls back to 1.0 when nothing succeeded.
    pub fn bt_bc(&self) -> (f64, f64) {
        let mut bt = f64::INFINITY;
        let mut bc = f64::INFINITY;
        for t in self.trials.iter().filter(|t| !t.failed) {
            bt = bt.min(t.exec_time_secs);
            bc = bc.min(t.exec_cost_usd);
        }
        (
            if bt.is_finite() { bt } else { 1.0 },
            if bc.is_finite() { bc } else { 1.0 },
        )
    }

    /// The best feasible trial under the run's objective.
    pub fn best_feasible(&self) -> Option<&Trial> {
        let (bt, bc) = self.bt_bc();
        self.trials.iter().filter(|t| !t.failed).min_by(|a, b| {
            let va = self.objective.value(a, bt, bc).unwrap_or(f64::INFINITY);
            let vb = self.objective.value(b, bt, bc).unwrap_or(f64::INFINITY);
            va.total_cmp(&vb)
        })
    }

    /// The best feasible objective value, if any trial succeeded.
    pub fn best_value(&self) -> Option<f64> {
        let (bt, bc) = self.bt_bc();
        self.best_feasible()
            .and_then(|t| self.objective.value(t, bt, bc))
    }

    /// Number of failed trials.
    pub fn failures(&self) -> usize {
        self.trials.iter().filter(|t| t.failed).count()
    }

    /// The §5.1 slicing watermark this run discovered: the highest memory
    /// limit that OOM-killed a trial. Configurations at or below it are
    /// known-bad; interfaces recommending configurations must skip them.
    pub fn sliced_watermark(&self) -> Option<u32> {
        self.trials
            .iter()
            .filter(|t| t.failed)
            .map(|t| t.config.memory_mib())
            .max()
    }

    /// A copy of `space` with this run's slicing watermark applied.
    pub fn apply_slicing(&self, space: &SearchSpace) -> SearchSpace {
        let mut out = space.clone();
        if let Some(w) = self.sliced_watermark() {
            out.slice_failed_memory(w);
        }
        out
    }
}

/// Expected Improvement for minimization.
///
/// `EI(x) = (best − μ − ξ)·Φ(z) + σ·φ(z)` with `z = (best − μ − ξ)/σ`;
/// when `σ = 0` it degenerates to `max(best − μ − ξ, 0)`.
///
/// # Examples
///
/// ```
/// use freedom_optimizer::expected_improvement;
///
/// // A candidate predicted well below the incumbent has high EI…
/// let good = expected_improvement(5.0, 1.0, 10.0, 0.01);
/// // …a candidate predicted above it, low EI.
/// let bad = expected_improvement(15.0, 1.0, 10.0, 0.01);
/// assert!(good > bad);
/// assert!(bad >= 0.0);
/// ```
pub fn expected_improvement(mean: f64, std: f64, best: f64, xi: f64) -> f64 {
    let improvement = best - mean - xi;
    if std <= 1e-12 {
        return improvement.max(0.0);
    }
    let z = improvement / std;
    (improvement * normal::cdf(z) + std * normal::pdf(z)).max(0.0)
}

/// The model-based optimizer: a surrogate kind plus loop settings.
#[derive(Debug, Clone)]
pub struct BayesianOptimizer {
    kind: SurrogateKind,
    config: BoConfig,
}

impl BayesianOptimizer {
    /// Creates an optimizer.
    pub fn new(kind: SurrogateKind, config: BoConfig) -> Self {
        Self { kind, config }
    }

    /// The surrogate variant in use.
    pub fn surrogate_kind(&self) -> SurrogateKind {
        self.kind
    }

    /// Runs the optimization loop.
    ///
    /// Returns [`OptimizerError::BudgetTooSmall`] when the budget cannot
    /// cover the initial samples and [`OptimizerError::EmptySearchSpace`]
    /// when there is nothing to optimize over.
    pub fn optimize(
        &self,
        space: &SearchSpace,
        evaluator: &mut dyn Evaluator,
        objective: Objective,
    ) -> Result<OptimizationRun> {
        let cfg = &self.config;
        if cfg.budget < cfg.n_initial || cfg.budget == 0 {
            return Err(OptimizerError::BudgetTooSmall {
                budget: cfg.budget,
                n_initial: cfg.n_initial,
            });
        }
        if space.is_empty() {
            return Err(OptimizerError::EmptySearchSpace);
        }

        let mut space = space.clone();
        let mut trials: Vec<Trial> = Vec::with_capacity(cfg.budget);
        let mut sliced_away = 0;
        // Configurations already evaluated: O(1) membership beats the old
        // per-candidate scan over the trial list (O(budget²) per step).
        let mut tried: HashSet<ResourceConfig> = HashSet::with_capacity(cfg.budget * 2);

        // Phase 1: random bootstrap samples. Samples are drawn up front;
        // any that a §5.1 slice removes mid-phase are skipped rather than
        // evaluated into a known failure.
        let mut bootstrap = RandomSearch::new(cfg.seed);
        for config in bootstrap.sample(&space, cfg.n_initial)? {
            if !space.contains(&config) {
                continue;
            }
            let trial = evaluator.evaluate(&config)?;
            tried.insert(config);
            sliced_away += self.absorb_failure(&mut space, &trial);
            trials.push(trial);
        }

        // Phase 2: surrogate-guided acquisition. One surrogate instance is
        // threaded through the whole loop so models with incremental refit
        // paths (the GP) can reuse the previous step's state; `fit_update`
        // reseeds per step, so stateless models behave exactly like the
        // old rebuild-per-step pattern.
        let mut surrogate = self.build_surrogate(cfg.seed);
        // Feature encodings for the current space, computed once and
        // invalidated only when slicing shrinks the space.
        let mut encoded: Vec<Vec<f64>> = space.configs().iter().map(SearchSpace::encode).collect();
        let mut step = 0u64;
        while trials.len() < cfg.budget {
            step += 1;
            if space.configs().iter().all(|c| tried.contains(c)) {
                break; // everything reachable has been measured
            }

            let fitted = self.refit(surrogate.as_mut(), &trials, objective, cfg.seed + step);
            let next = if fitted {
                let best = current_best(&trials, objective).unwrap_or(f64::INFINITY);
                // Scale ξ to the incumbent so EI is unit-free (costs
                // are ~1e-5 USD, times ~1e1 s).
                let xi = if best.is_finite() {
                    cfg.xi * best.abs().max(f64::MIN_POSITIVE)
                } else {
                    cfg.xi
                };
                // Predict the whole (stable) space rather than just the
                // untested configs: the candidate set is then identical
                // across steps, which lets the surrogate's batched
                // predictor reuse its cross-kernel cache; already-tried
                // configs are skipped during scoring.
                let predictions = surrogate.predict_batch_mut(&encoded)?;
                let mut best_candidate = None;
                let mut best_score = f64::NEG_INFINITY;
                for (c, p) in space.configs().iter().zip(&predictions) {
                    if tried.contains(c) {
                        continue;
                    }
                    // Higher score = more attractive to evaluate next.
                    let score = match cfg.acquisition {
                        Acquisition::ExpectedImprovement => {
                            expected_improvement(p.mean, p.std, best, xi)
                        }
                        Acquisition::LowerConfidenceBound { kappa } => -(p.mean - kappa * p.std),
                    };
                    if best_candidate.is_none() || score > best_score {
                        best_score = score;
                        best_candidate = Some(*c);
                    }
                }
                best_candidate.expect("at least one untried config exists")
            } else {
                // Not enough feasible data to fit yet: keep sampling.
                let mut fallback = RandomSearch::new(cfg.seed ^ step.rotate_left(17));
                match fallback
                    .sample(&space, space.len())?
                    .into_iter()
                    .find(|c| !tried.contains(c))
                {
                    Some(c) => c,
                    None => break,
                }
            };

            let trial = evaluator.evaluate(&next)?;
            tried.insert(next);
            let removed = self.absorb_failure(&mut space, &trial);
            if removed > 0 {
                sliced_away += removed;
                encoded = space.configs().iter().map(SearchSpace::encode).collect();
            }
            trials.push(trial);
        }

        Ok(finish_run(objective, trials, sliced_away))
    }

    /// Builds the loop's persistent surrogate, threading the configured
    /// full-refit cadence into surrogates that support warm updates.
    fn build_surrogate(&self, seed: u64) -> Box<dyn Surrogate> {
        match self.kind {
            SurrogateKind::Gp => Box::new(freedom_surrogates::GaussianProcess::new(
                freedom_surrogates::GpConfig {
                    refit_every: self.config.surrogate_refit_every.max(1),
                    ..freedom_surrogates::GpConfig::default()
                },
                seed,
            )),
            kind => kind.build(seed),
        }
    }

    /// Refits the loop's persistent surrogate via its incremental path;
    /// `false` when there is not enough data or the fit failed.
    fn refit(
        &self,
        model: &mut dyn Surrogate,
        trials: &[Trial],
        objective: Objective,
        step_seed: u64,
    ) -> bool {
        let (x, y) = self.training_set(trials, objective);
        if x.len() < 2 {
            return false;
        }
        model.fit_update(&x, &y, step_seed).is_ok()
    }

    /// Fits this optimizer's surrogate kind on the feasible trials (plus
    /// penalized failures when configured); `None` when there is not
    /// enough data.
    pub fn fit_on_trials(
        &self,
        trials: &[Trial],
        objective: Objective,
        seed: u64,
    ) -> Option<Box<dyn Surrogate>> {
        let (x, y) = self.training_set(trials, objective);
        if x.len() < 2 {
            return None;
        }
        let mut model = self.kind.build(seed);
        model.fit(&x, &y).ok()?;
        Some(model)
    }

    fn training_set(&self, trials: &[Trial], objective: Objective) -> (Vec<Vec<f64>>, Vec<f64>) {
        let (bt, bc) = normalizers(trials);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for t in trials {
            match objective.value(t, bt, bc) {
                Some(v) => {
                    x.push(SearchSpace::encode(&t.config));
                    y.push(v);
                }
                None => {
                    if let FailureHandling::Penalty(p) = self.config.failure_handling {
                        x.push(SearchSpace::encode(&t.config));
                        y.push(p);
                    }
                }
            }
        }
        (x, y)
    }

    /// Applies failure feedback; returns how many configs were sliced.
    fn absorb_failure(&self, space: &mut SearchSpace, trial: &Trial) -> usize {
        if trial.failed && matches!(self.config.failure_handling, FailureHandling::Slice) {
            space.slice_failed_memory(trial.config.memory_mib())
        } else {
            0
        }
    }
}

/// Runs a pure sampling-based search (§5.2's Random/LHS baselines): draw
/// the whole budget up front, evaluate every sample, and report the same
/// [`OptimizationRun`] shape as the model-based loop.
///
/// Sampling methods have no feedback step, so §5.1 slicing does not apply;
/// failed samples simply consume budget.
pub fn run_sampling(
    sampler: &mut dyn crate::Sampler,
    space: &SearchSpace,
    evaluator: &mut dyn Evaluator,
    objective: Objective,
    budget: usize,
) -> Result<OptimizationRun> {
    if budget == 0 {
        return Err(OptimizerError::BudgetTooSmall {
            budget,
            n_initial: 1,
        });
    }
    if space.is_empty() {
        return Err(OptimizerError::EmptySearchSpace);
    }
    let mut trials = Vec::with_capacity(budget);
    for config in sampler.sample(space, budget)? {
        trials.push(evaluator.evaluate(&config)?);
    }
    Ok(finish_run(objective, trials, 0))
}

fn normalizers(trials: &[Trial]) -> (f64, f64) {
    let mut bt = f64::INFINITY;
    let mut bc = f64::INFINITY;
    for t in trials.iter().filter(|t| !t.failed) {
        bt = bt.min(t.exec_time_secs);
        bc = bc.min(t.exec_cost_usd);
    }
    (
        if bt.is_finite() { bt } else { 1.0 },
        if bc.is_finite() { bc } else { 1.0 },
    )
}

fn current_best(trials: &[Trial], objective: Objective) -> Option<f64> {
    let (bt, bc) = normalizers(trials);
    trials
        .iter()
        .filter_map(|t| objective.value(t, bt, bc))
        .min_by(f64::total_cmp)
}

fn finish_run(objective: Objective, trials: Vec<Trial>, sliced_away: usize) -> OptimizationRun {
    let (bt, bc) = normalizers(&trials);
    let mut best = f64::INFINITY;
    let best_value_by_step = trials
        .iter()
        .map(|t| {
            if let Some(v) = objective.value(t, bt, bc) {
                best = best.min(v);
            }
            best
        })
        .collect();
    OptimizationRun {
        objective,
        trials,
        best_value_by_step,
        sliced_away,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnEvaluator;
    use freedom_faas::ResourceConfig;

    /// A smooth synthetic objective with a unique optimum at
    /// (share=2.0, mem=512, c5): time falls with share, cost rises with
    /// memory, families shift both.
    fn synthetic(config: &ResourceConfig) -> Trial {
        let share = config.cpu_share();
        let mem = config.memory_mib() as f64;
        let fam_penalty = match config.family() {
            freedom_cluster::InstanceFamily::C5 => 0.0,
            freedom_cluster::InstanceFamily::M5 => 1.0,
            _ => 2.0,
        };
        Trial {
            config: *config,
            exec_time_secs: 10.0 / share + fam_penalty + (mem / 512.0 - 1.0).powi(2),
            exec_cost_usd: (0.01 * share + 1e-5 * mem) * (10.0 / share + fam_penalty),
            failed: false,
        }
    }

    fn synthetic_with_oom(config: &ResourceConfig) -> Trial {
        let mut t = synthetic(config);
        if config.memory_mib() < 512 {
            t.failed = true;
        }
        t
    }

    fn run_bo(kind: SurrogateKind, seed: u64, oom: bool) -> OptimizationRun {
        let space = SearchSpace::table1();
        let mut eval = FnEvaluator::new(|c: &ResourceConfig| {
            Ok(if oom {
                synthetic_with_oom(c)
            } else {
                synthetic(c)
            })
        });
        BayesianOptimizer::new(
            kind,
            BoConfig {
                seed,
                ..BoConfig::default()
            },
        )
        .optimize(&space, &mut eval, Objective::ExecutionTime)
        .unwrap()
    }

    #[test]
    fn gp_bo_approaches_the_synthetic_optimum() {
        // Global optimum: share 2.0 on c5 with mem 512 → ET = 5.0. Like the
        // paper, judge the median over repeated runs (§5.2 repeats 10×).
        let bests: Vec<f64> = (1..=5)
            .map(|seed| {
                let run = run_bo(SurrogateKind::Gp, seed, false);
                assert_eq!(run.trials.len(), 20);
                run.best_value().unwrap()
            })
            .collect();
        let median = freedom_linalg::stats::median(&bests).unwrap();
        assert!(median <= 5.0 * 1.10, "median best {median} not within 10%");
        let overall = bests.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(overall <= 5.0 * 1.05, "no run within 5%: {bests:?}");
    }

    #[test]
    fn all_variants_stay_within_budget_and_improve() {
        for kind in SurrogateKind::ALL {
            let run = run_bo(kind, 3, false);
            assert!(run.trials.len() <= 20);
            let curve = &run.best_value_by_step;
            // The convergence curve is monotone non-increasing.
            for w in curve.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{kind}: curve not monotone");
            }
            // And it ends no worse than random's typical value.
            assert!(run.best_value().unwrap() < 8.0, "{kind}");
        }
    }

    #[test]
    fn slicing_removes_failing_memory_levels() {
        let run = run_bo(SurrogateKind::Gp, 7, true);
        assert!(run.sliced_away > 0);
        // After the first OOM at 128/256, no later trial revisits a sliced
        // memory level below the watermark discovered so far.
        let mut watermark = 0;
        for t in &run.trials {
            if watermark > 0 {
                assert!(
                    t.config.memory_mib() > watermark,
                    "revisited sliced level {} after watermark {watermark}",
                    t.config.memory_mib()
                );
            }
            if t.failed {
                watermark = watermark.max(t.config.memory_mib());
            }
        }
        assert!(run.failures() > 0 || run.sliced_away == 0);
    }

    #[test]
    fn penalty_mode_keeps_failed_points_in_training() {
        let space = SearchSpace::table1();
        let mut eval = FnEvaluator::new(|c: &ResourceConfig| Ok(synthetic_with_oom(c)));
        let run = BayesianOptimizer::new(
            SurrogateKind::Gp,
            BoConfig {
                failure_handling: FailureHandling::Penalty(1000.0),
                seed: 5,
                ..BoConfig::default()
            },
        )
        .optimize(&space, &mut eval, Objective::ExecutionTime)
        .unwrap();
        assert_eq!(run.sliced_away, 0);
        assert!(run.best_value().unwrap() < 10.0);
    }

    #[test]
    fn budget_validation() {
        let space = SearchSpace::table1();
        let mut eval = FnEvaluator::new(|c: &ResourceConfig| Ok(synthetic(c)));
        let err = BayesianOptimizer::new(
            SurrogateKind::Gp,
            BoConfig {
                budget: 2,
                n_initial: 3,
                ..BoConfig::default()
            },
        )
        .optimize(&space, &mut eval, Objective::ExecutionTime)
        .unwrap_err();
        assert!(matches!(err, OptimizerError::BudgetTooSmall { .. }));
    }

    #[test]
    fn empty_space_is_rejected() {
        let mut space = SearchSpace::table1();
        space.slice_failed_memory(4096);
        let mut eval = FnEvaluator::new(|c: &ResourceConfig| Ok(synthetic(c)));
        let err = BayesianOptimizer::new(SurrogateKind::Gp, BoConfig::default())
            .optimize(&space, &mut eval, Objective::ExecutionTime)
            .unwrap_err();
        assert_eq!(err, OptimizerError::EmptySearchSpace);
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let a = run_bo(SurrogateKind::Rf, 11, false);
        let b = run_bo(SurrogateKind::Rf, 11, false);
        assert_eq!(a.trials, b.trials);
        let c = run_bo(SurrogateKind::Rf, 12, false);
        assert_ne!(a.trials, c.trials);
    }

    #[test]
    fn ei_properties() {
        // More uncertainty in a tied mean ⇒ more EI.
        let tight = expected_improvement(10.0, 0.1, 10.0, 0.0);
        let loose = expected_improvement(10.0, 2.0, 10.0, 0.0);
        assert!(loose > tight);
        // Zero std degenerates to plain improvement.
        assert_eq!(expected_improvement(4.0, 0.0, 10.0, 0.0), 6.0);
        assert_eq!(expected_improvement(14.0, 0.0, 10.0, 0.0), 0.0);
        // EI is never negative.
        assert!(expected_improvement(100.0, 3.0, 0.0, 0.0) >= 0.0);
    }

    #[test]
    fn lcb_acquisition_also_converges() {
        let space = SearchSpace::table1();
        let mut eval = FnEvaluator::new(|c: &ResourceConfig| Ok(synthetic(c)));
        let run = BayesianOptimizer::new(
            SurrogateKind::Gp,
            BoConfig {
                acquisition: Acquisition::LowerConfidenceBound { kappa: 1.96 },
                seed: 2,
                ..BoConfig::default()
            },
        )
        .optimize(&space, &mut eval, Objective::ExecutionTime)
        .unwrap();
        // Optimum is 5.0; LCB should land in the same neighbourhood as EI.
        let best = run.best_value().unwrap();
        assert!(best < 6.5, "LCB best {best}");
    }

    #[test]
    fn sampling_run_uses_the_whole_budget() {
        let space = SearchSpace::table1();
        let mut eval = FnEvaluator::new(|c: &ResourceConfig| Ok(synthetic(c)));
        let mut sampler = crate::RandomSearch::new(4);
        let run = run_sampling(
            &mut sampler,
            &space,
            &mut eval,
            Objective::ExecutionTime,
            20,
        )
        .unwrap();
        assert_eq!(run.trials.len(), 20);
        assert_eq!(run.sliced_away, 0);
        assert!(run.best_value().unwrap() >= 5.0);
        let mut lhs = crate::LatinHypercube::new(4);
        assert!(run_sampling(&mut lhs, &space, &mut eval, Objective::ExecutionTime, 0).is_err());
    }

    #[test]
    fn weighted_objective_runs_end_to_end() {
        let space = SearchSpace::table1();
        let mut eval = FnEvaluator::new(|c: &ResourceConfig| Ok(synthetic(c)));
        let run = BayesianOptimizer::new(SurrogateKind::Gp, BoConfig::default())
            .optimize(&space, &mut eval, Objective::weighted(0.5, 0.5).unwrap())
            .unwrap();
        // Weighted values are ~1 at the per-metric optima, so the best
        // combined value is bounded by wt + wc = 1 from below.
        let best = run.best_value().unwrap();
        assert!(best >= 1.0 - 1e-9);
        assert!(best < 2.5);
    }
}

//! How optimizers obtain measurements for a configuration.

use freedom_faas::{PerfTable, ResourceConfig};

use crate::{OptimizerError, Result, Trial};

/// A source of measurements for candidate configurations.
///
/// Offline optimization evaluates against a live gateway (profiling runs);
/// experiment harnesses evaluate against a pre-collected ground-truth
/// table. Both are [`Evaluator`]s.
pub trait Evaluator {
    /// Measures one configuration.
    fn evaluate(&mut self, config: &ResourceConfig) -> Result<Trial>;
}

/// An evaluator backed by a ground-truth [`PerfTable`] (§2's dataset).
///
/// Lookups return the table's median measurements; unknown configurations
/// are an error (the table is expected to cover the search space).
#[derive(Debug, Clone)]
pub struct TableEvaluator<'a> {
    table: &'a PerfTable,
}

impl<'a> TableEvaluator<'a> {
    /// Wraps a ground-truth table.
    pub fn new(table: &'a PerfTable) -> Self {
        Self { table }
    }

    /// The backing table.
    pub fn table(&self) -> &PerfTable {
        self.table
    }
}

impl Evaluator for TableEvaluator<'_> {
    fn evaluate(&mut self, config: &ResourceConfig) -> Result<Trial> {
        let point = self
            .table
            .lookup(config)
            .ok_or_else(|| OptimizerError::UnknownConfig(config.to_string()))?;
        Ok(Trial {
            config: *config,
            exec_time_secs: point.exec_time_secs,
            exec_cost_usd: point.exec_cost_usd,
            failed: point.failed,
        })
    }
}

/// An evaluator from a closure (tests, synthetic objectives, live
/// gateways).
pub struct FnEvaluator<F>
where
    F: FnMut(&ResourceConfig) -> Result<Trial>,
{
    f: F,
}

impl<F> FnEvaluator<F>
where
    F: FnMut(&ResourceConfig) -> Result<Trial>,
{
    /// Wraps a closure.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F> Evaluator for FnEvaluator<F>
where
    F: FnMut(&ResourceConfig) -> Result<Trial>,
{
    fn evaluate(&mut self, config: &ResourceConfig) -> Result<Trial> {
        (self.f)(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom_cluster::InstanceFamily;
    use freedom_faas::PerfPoint;
    use freedom_workloads::{FunctionKind, InputId};

    fn table() -> PerfTable {
        let cfg = ResourceConfig::new(InstanceFamily::M5, 1.0, 512).unwrap();
        PerfTable::from_points(
            FunctionKind::S3,
            InputId("obj".into()),
            vec![PerfPoint {
                config: cfg,
                failed: false,
                exec_time_secs: 2.0,
                exec_cost_usd: 1e-5,
                peak_mem_mib: Some(100),
                reps: 5,
            }],
        )
    }

    #[test]
    fn table_evaluator_returns_medians() {
        let t = table();
        let mut e = TableEvaluator::new(&t);
        let cfg = ResourceConfig::new(InstanceFamily::M5, 1.0, 512).unwrap();
        let trial = e.evaluate(&cfg).unwrap();
        assert_eq!(trial.exec_time_secs, 2.0);
        assert!(!trial.failed);
        assert_eq!(e.table().points().len(), 1);
    }

    #[test]
    fn table_evaluator_rejects_unknown_configs() {
        let t = table();
        let mut e = TableEvaluator::new(&t);
        let missing = ResourceConfig::new(InstanceFamily::C5, 1.0, 512).unwrap();
        assert!(matches!(
            e.evaluate(&missing),
            Err(OptimizerError::UnknownConfig(_))
        ));
    }

    #[test]
    fn fn_evaluator_delegates() {
        let mut calls = 0;
        {
            let mut e = FnEvaluator::new(|cfg: &ResourceConfig| {
                calls += 1;
                Ok(Trial {
                    config: *cfg,
                    exec_time_secs: 1.0,
                    exec_cost_usd: 1.0,
                    failed: false,
                })
            });
            let cfg = ResourceConfig::new(InstanceFamily::M5, 1.0, 512).unwrap();
            assert!(e.evaluate(&cfg).is_ok());
            assert!(e.evaluate(&cfg).is_ok());
        }
        assert_eq!(calls, 2);
    }
}

//! Online-optimization violation accounting (§5.4).
//!
//! When optimization trials are production invocations, a trial with a bad
//! configuration degrades real traffic. The paper counts a *violation*
//! whenever a trial's objective value reaches 1.5× the objective value of
//! the best configuration in the search space, and compares methods by
//! their average violation count over repeated runs.

use crate::OptimizationRun;

/// The paper's violation threshold: 1.5× the best objective value.
pub const VIOLATION_FACTOR: f64 = 1.5;

/// Counts the violations in one run against the search-space optimum
/// `best_in_space` (a ground-truth value, not the run's own best).
///
/// Failed trials count as violations: a production invocation that
/// OOM-killed degraded service more than any slow configuration.
///
/// # Examples
///
/// ```
/// use freedom_optimizer::online::{count_violations, VIOLATION_FACTOR};
/// use freedom_optimizer::{Objective, OptimizationRun, Trial};
/// # use freedom_faas::ResourceConfig;
/// # use freedom_cluster::InstanceFamily;
///
/// # let config = ResourceConfig::new(InstanceFamily::M5, 1.0, 512).unwrap();
/// let trials = vec![
///     Trial { config, exec_time_secs: 10.0, exec_cost_usd: 1.0, failed: false },
///     Trial { config, exec_time_secs: 16.0, exec_cost_usd: 1.0, failed: false },
/// ];
/// let run = OptimizationRun {
///     objective: Objective::ExecutionTime,
///     trials,
///     best_value_by_step: vec![10.0, 10.0],
///     sliced_away: 0,
/// };
/// // Best in space is 10 s; 16 s ≥ 1.5 × 10 is a violation.
/// assert_eq!(count_violations(&run, 10.0), 1);
/// ```
pub fn count_violations(run: &OptimizationRun, best_in_space: f64) -> usize {
    count_violations_with_factor(run, best_in_space, VIOLATION_FACTOR)
}

/// Like [`count_violations`] with an explicit threshold factor.
pub fn count_violations_with_factor(
    run: &OptimizationRun,
    best_in_space: f64,
    factor: f64,
) -> usize {
    if best_in_space.is_nan() || best_in_space <= 0.0 || factor.is_nan() || factor <= 0.0 {
        return run.trials.len(); // degenerate baseline: everything violates
    }
    let threshold = factor * best_in_space;
    let (bt, bc) = run.bt_bc();
    run.trials
        .iter()
        .map(|t| match run.objective.value(t, bt, bc) {
            Some(v) => usize::from(v >= threshold),
            None => 1, // failures always violate
        })
        .sum()
}

/// Average violations across repeated runs (Figure 8's y-axis).
pub fn average_violations(runs: &[OptimizationRun], best_in_space: f64) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .map(|r| count_violations(r, best_in_space) as f64)
        .sum::<f64>()
        / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Objective, Trial};
    use freedom_cluster::InstanceFamily;
    use freedom_faas::ResourceConfig;

    fn run_with(times: &[f64], failed_mask: &[bool]) -> OptimizationRun {
        let config = ResourceConfig::new(InstanceFamily::M5, 1.0, 512).unwrap();
        let trials: Vec<Trial> = times
            .iter()
            .zip(failed_mask)
            .map(|(&t, &f)| Trial {
                config,
                exec_time_secs: t,
                exec_cost_usd: t * 0.1,
                failed: f,
            })
            .collect();
        OptimizationRun {
            objective: Objective::ExecutionTime,
            trials,
            best_value_by_step: Vec::new(),
            sliced_away: 0,
        }
    }

    #[test]
    fn counts_only_threshold_crossings() {
        let run = run_with(&[10.0, 14.9, 15.0, 40.0], &[false; 4]);
        // threshold = 15.0: 15.0 and 40.0 violate (>=).
        assert_eq!(count_violations(&run, 10.0), 2);
    }

    #[test]
    fn failures_always_count() {
        let run = run_with(&[10.0, 11.0], &[false, true]);
        assert_eq!(count_violations(&run, 10.0), 1);
    }

    #[test]
    fn custom_factor() {
        let run = run_with(&[10.0, 12.0, 20.0], &[false; 3]);
        assert_eq!(count_violations_with_factor(&run, 10.0, 1.1), 2);
        assert_eq!(count_violations_with_factor(&run, 10.0, 3.0), 0);
    }

    #[test]
    fn degenerate_best_counts_everything() {
        let run = run_with(&[1.0, 2.0], &[false; 2]);
        assert_eq!(count_violations(&run, 0.0), 2);
        assert_eq!(count_violations(&run, f64::NAN), 2);
    }

    #[test]
    fn average_over_runs() {
        let a = run_with(&[10.0, 20.0], &[false; 2]); // 1 violation
        let b = run_with(&[10.0, 10.0], &[false; 2]); // 0 violations
        assert_eq!(average_violations(&[a, b], 10.0), 0.5);
        assert_eq!(average_violations(&[], 10.0), 0.0);
    }
}

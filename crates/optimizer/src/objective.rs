//! Optimization objectives: execution time, cost, and Eq. 2 weighting.

use std::fmt;

use freedom_faas::ResourceConfig;

use crate::{OptimizerError, Result};

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trial {
    /// Configuration that was run.
    pub config: ResourceConfig,
    /// Measured execution time, seconds (time burned, even on failure).
    pub exec_time_secs: f64,
    /// Measured execution cost, USD.
    pub exec_cost_usd: f64,
    /// Whether the run failed (OOM / timeout).
    pub failed: bool,
}

/// The performance objective being minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize execution time.
    ExecutionTime,
    /// Minimize execution cost.
    ExecutionCost,
    /// Eq. 2: `F_w = W_t · F_t/B_t + W_c · F_c/B_c` with best-observed
    /// normalizers `B_t`, `B_c`.
    Weighted {
        /// Weight of execution time, in `[0, 1]`.
        wt: f64,
        /// Weight of execution cost (`1 − wt` in the paper).
        wc: f64,
    },
}

impl Objective {
    /// Creates a weighted objective, validating the weights.
    pub fn weighted(wt: f64, wc: f64) -> Result<Self> {
        let valid =
            (0.0..=1.0).contains(&wt) && (0.0..=1.0).contains(&wc) && (wt + wc - 1.0).abs() < 1e-9;
        if !valid {
            return Err(OptimizerError::InvalidArgument(format!(
                "weights must be in [0,1] and sum to 1, got wt={wt} wc={wc}"
            )));
        }
        Ok(Self::Weighted { wt, wc })
    }

    /// The three weighted settings the paper pre-trains (§6.1).
    pub fn paper_weight_grid() -> [Objective; 3] {
        [
            Objective::Weighted { wt: 0.25, wc: 0.75 },
            Objective::Weighted { wt: 0.5, wc: 0.5 },
            Objective::Weighted { wt: 0.75, wc: 0.25 },
        ]
    }

    /// Objective value of a trial given the Eq. 2 normalizers (the best
    /// execution time `bt` and cost `bc` observed so far).
    ///
    /// Failed trials have no objective value.
    pub fn value(&self, trial: &Trial, bt: f64, bc: f64) -> Option<f64> {
        if trial.failed {
            return None;
        }
        Some(match self {
            Self::ExecutionTime => trial.exec_time_secs,
            Self::ExecutionCost => trial.exec_cost_usd,
            Self::Weighted { wt, wc } => {
                let bt = if bt > 0.0 { bt } else { 1.0 };
                let bc = if bc > 0.0 { bc } else { 1.0 };
                wt * trial.exec_time_secs / bt + wc * trial.exec_cost_usd / bc
            }
        })
    }

    /// Objective value from raw (time, cost) measurements.
    pub fn value_of(&self, exec_time_secs: f64, exec_cost_usd: f64, bt: f64, bc: f64) -> f64 {
        match self {
            Self::ExecutionTime => exec_time_secs,
            Self::ExecutionCost => exec_cost_usd,
            Self::Weighted { wt, wc } => {
                let bt = if bt > 0.0 { bt } else { 1.0 };
                let bc = if bc > 0.0 { bc } else { 1.0 };
                wt * exec_time_secs / bt + wc * exec_cost_usd / bc
            }
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ExecutionTime => write!(f, "ET"),
            Self::ExecutionCost => write!(f, "EC"),
            Self::Weighted { wt, wc } => write!(f, "Wt={wt},Wc={wc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom_cluster::InstanceFamily;

    fn trial(t: f64, c: f64, failed: bool) -> Trial {
        Trial {
            config: ResourceConfig::new(InstanceFamily::M5, 1.0, 512).unwrap(),
            exec_time_secs: t,
            exec_cost_usd: c,
            failed,
        }
    }

    #[test]
    fn single_objectives_pick_their_metric() {
        let tr = trial(10.0, 2.0, false);
        assert_eq!(Objective::ExecutionTime.value(&tr, 1.0, 1.0), Some(10.0));
        assert_eq!(Objective::ExecutionCost.value(&tr, 1.0, 1.0), Some(2.0));
    }

    #[test]
    fn failed_trials_have_no_value() {
        let tr = trial(10.0, 2.0, true);
        assert_eq!(Objective::ExecutionTime.value(&tr, 1.0, 1.0), None);
    }

    #[test]
    fn weighted_matches_equation_2() {
        let obj = Objective::weighted(0.25, 0.75).unwrap();
        let tr = trial(20.0, 4.0, false);
        // 0.25 * 20/10 + 0.75 * 4/2 = 0.5 + 1.5 = 2.0
        let v = obj.value(&tr, 10.0, 2.0).unwrap();
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_validation() {
        assert!(Objective::weighted(0.5, 0.5).is_ok());
        assert!(Objective::weighted(0.7, 0.2).is_err());
        assert!(Objective::weighted(-0.1, 1.1).is_err());
        assert_eq!(Objective::paper_weight_grid().len(), 3);
    }

    #[test]
    fn zero_normalizers_are_guarded() {
        let obj = Objective::weighted(0.5, 0.5).unwrap();
        let tr = trial(2.0, 2.0, false);
        let v = obj.value(&tr, 0.0, 0.0).unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn display_names() {
        assert_eq!(Objective::ExecutionTime.to_string(), "ET");
        assert_eq!(Objective::ExecutionCost.to_string(), "EC");
        assert_eq!(
            Objective::Weighted { wt: 0.5, wc: 0.5 }.to_string(),
            "Wt=0.5,Wc=0.5"
        );
    }
}

//! Black-box optimization of serverless resource configurations (§5).
//!
//! This crate implements the paper's automatic-configuration machinery:
//!
//! - [`SearchSpace`]: the Table 1 grid (8 CPU shares × 6 memory limits × 6
//!   instance families = 288 configurations), with feature encoding for
//!   surrogates and the §5.1 *slicing* rule that removes every
//!   configuration whose memory is at or below an observed OOM;
//! - [`Objective`]: execution time, execution cost, and Eq. 2's weighted
//!   combination with best-observed normalization;
//! - samplers ([`RandomSearch`], [`LatinHypercube`]) and the
//!   [`BayesianOptimizer`] with Expected Improvement over any
//!   [`freedom_surrogates::SurrogateKind`];
//! - [`pareto`]: non-dominated front extraction and the Figure 11
//!   predicted-vs-actual distance metric;
//! - [`online`]: violation counting for online optimization (§5.4);
//! - [`eval`]: MAPE prediction-error studies (§5.5, Figures 9 and 10).
//!
//! # Examples
//!
//! ```
//! use freedom_faas::collect_ground_truth;
//! use freedom_optimizer::{
//!     BayesianOptimizer, BoConfig, Objective, SearchSpace, TableEvaluator,
//! };
//! use freedom_surrogates::SurrogateKind;
//! use freedom_workloads::FunctionKind;
//!
//! let space = SearchSpace::table1();
//! let table = collect_ground_truth(
//!     FunctionKind::Faceblur,
//!     &FunctionKind::Faceblur.default_input(),
//!     space.configs(),
//!     5,
//!     1,
//! )
//! .unwrap();
//! let mut evaluator = TableEvaluator::new(&table);
//! let run = BayesianOptimizer::new(SurrogateKind::Gp, BoConfig::default())
//!     .optimize(&space, &mut evaluator, Objective::ExecutionTime)
//!     .unwrap();
//! let best = run.best_feasible().unwrap();
//! let truth = table.best_by_time().unwrap().exec_time_secs;
//! assert!(best.exec_time_secs <= truth * 1.25);
//! ```

mod bo;
mod error;
pub mod eval;
mod evaluate;
mod objective;
pub mod online;
pub mod pareto;
mod sampler;
mod space;

pub use bo::{
    expected_improvement, run_sampling, Acquisition, BayesianOptimizer, BoConfig, FailureHandling,
    OptimizationRun,
};
pub use error::OptimizerError;
pub use evaluate::{Evaluator, FnEvaluator, TableEvaluator};
pub use objective::{Objective, Trial};
pub use sampler::{LatinHypercube, RandomSearch, Sampler};
pub use space::{SearchSpace, CPU_SHARES, MEMORY_MIB};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, OptimizerError>;

//! Error type for the optimizer.

use std::fmt;

use freedom_faas::FaasError;
use freedom_surrogates::SurrogateError;

/// Errors produced by optimization runs.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerError {
    /// The search space has no configurations left (e.g. everything was
    /// sliced away by OOM failures).
    EmptySearchSpace,
    /// The evaluation budget is smaller than the number of initial samples.
    BudgetTooSmall {
        /// Configured budget.
        budget: usize,
        /// Configured initial samples.
        n_initial: usize,
    },
    /// A surrogate failed to fit or predict.
    Surrogate(SurrogateError),
    /// The platform failed to evaluate a configuration.
    Evaluation(FaasError),
    /// A configuration was not found where one was required (e.g. table
    /// lookup miss).
    UnknownConfig(String),
    /// An invalid argument (weights outside `[0, 1]`, zero trials, …).
    InvalidArgument(String),
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySearchSpace => write!(f, "search space is empty"),
            Self::BudgetTooSmall { budget, n_initial } => write!(
                f,
                "budget {budget} is smaller than the {n_initial} initial samples"
            ),
            Self::Surrogate(e) => write!(f, "surrogate failure: {e}"),
            Self::Evaluation(e) => write!(f, "evaluation failure: {e}"),
            Self::UnknownConfig(c) => write!(f, "configuration not in table: {c}"),
            Self::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for OptimizerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Surrogate(e) => Some(e),
            Self::Evaluation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SurrogateError> for OptimizerError {
    fn from(e: SurrogateError) -> Self {
        Self::Surrogate(e)
    }
}

impl From<FaasError> for OptimizerError {
    fn from(e: FaasError) -> Self {
        Self::Evaluation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = OptimizerError::BudgetTooSmall {
            budget: 2,
            n_initial: 3,
        };
        assert!(e.to_string().contains("budget 2"));
        assert!(e.source().is_none());
        let s: OptimizerError = SurrogateError::NotFitted.into();
        assert!(s.source().is_some());
    }
}

//! Sampling-based search (§5.1): random sampling and Latin hypercube.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use freedom_faas::ResourceConfig;

use crate::{Result, SearchSpace};

/// A strategy that draws a batch of candidate configurations.
pub trait Sampler {
    /// Draws up to `n` distinct configurations from `space`.
    ///
    /// Returns fewer when the space is smaller than `n`.
    fn sample(&mut self, space: &SearchSpace, n: usize) -> Result<Vec<ResourceConfig>>;

    /// Short stable name, e.g. `"Random"`.
    fn name(&self) -> &'static str;
}

/// Uniform sampling without replacement.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    rng: StdRng,
}

impl RandomSearch {
    /// Creates a seeded random sampler.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Sampler for RandomSearch {
    fn sample(&mut self, space: &SearchSpace, n: usize) -> Result<Vec<ResourceConfig>> {
        let mut indices: Vec<usize> = (0..space.len()).collect();
        indices.shuffle(&mut self.rng);
        indices.truncate(n);
        indices.into_iter().map(|i| space.get(i)).collect()
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

/// Latin-hypercube sampling adapted to the discrete Table 1 grid.
///
/// Each of the three axes (CPU share, memory, family) is stratified into
/// `n` strata via independent random permutations — the classic LHS
/// space-filling design of McKay et al., projected back onto grid values.
/// Sampled grid cells that were sliced out of the space are snapped to the
/// nearest surviving configuration.
#[derive(Debug, Clone)]
pub struct LatinHypercube {
    rng: StdRng,
}

impl LatinHypercube {
    /// Creates a seeded LHS sampler.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Maps a stratum midpoint in `[0, 1)` onto an axis of `k` grid values.
    fn axis_index(u: f64, k: usize) -> usize {
        ((u * k as f64) as usize).min(k - 1)
    }
}

impl Sampler for LatinHypercube {
    fn sample(&mut self, space: &SearchSpace, n: usize) -> Result<Vec<ResourceConfig>> {
        if n == 0 || space.is_empty() {
            return Ok(Vec::new());
        }
        // Distinct axis values present in the (possibly sliced) space.
        let mut shares: Vec<u32> = space.configs().iter().map(|c| c.cpu_milli()).collect();
        shares.sort_unstable();
        shares.dedup();
        let mut mems: Vec<u32> = space.configs().iter().map(|c| c.memory_mib()).collect();
        mems.sort_unstable();
        mems.dedup();
        let mut fams: Vec<_> = space.configs().iter().map(|c| c.family()).collect();
        fams.sort();
        fams.dedup();

        // One random permutation of strata per axis.
        let mut perm_a: Vec<usize> = (0..n).collect();
        let mut perm_b: Vec<usize> = (0..n).collect();
        let mut perm_c: Vec<usize> = (0..n).collect();
        perm_a.shuffle(&mut self.rng);
        perm_b.shuffle(&mut self.rng);
        perm_c.shuffle(&mut self.rng);

        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            // Jittered stratum midpoints in [0, 1).
            let ua = (perm_a[i] as f64 + self.rng.gen::<f64>()) / n as f64;
            let ub = (perm_b[i] as f64 + self.rng.gen::<f64>()) / n as f64;
            let uc = (perm_c[i] as f64 + self.rng.gen::<f64>()) / n as f64;
            let share = shares[Self::axis_index(ua, shares.len())];
            let mem = mems[Self::axis_index(ub, mems.len())];
            let fam = fams[Self::axis_index(uc, fams.len())];
            let candidate = ResourceConfig::new(fam, share as f64 / 1000.0, mem)
                .expect("axis values come from valid configs");
            // Snap to the space (cells can be missing after slicing).
            let snapped = if space.contains(&candidate) {
                candidate
            } else {
                *space
                    .configs()
                    .iter()
                    .min_by_key(|c| {
                        let d_share = c.cpu_milli().abs_diff(candidate.cpu_milli());
                        let d_mem = c.memory_mib().abs_diff(candidate.memory_mib());
                        (d_mem, d_share, c.family() != candidate.family())
                    })
                    .expect("space is non-empty")
            };
            if !out.contains(&snapped) {
                out.push(snapped);
            }
        }
        // Deduplication can shrink the batch; top up randomly.
        if out.len() < n.min(space.len()) {
            let mut filler: Vec<ResourceConfig> = space
                .configs()
                .iter()
                .copied()
                .filter(|c| !out.contains(c))
                .collect();
            filler.shuffle(&mut self.rng);
            out.extend(filler.into_iter().take(n.min(space.len()) - out.len()));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "LHS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_draws_distinct_configs() {
        let space = SearchSpace::table1();
        let mut s = RandomSearch::new(1);
        let batch = s.sample(&space, 20).unwrap();
        assert_eq!(batch.len(), 20);
        let mut dedup = batch.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
        assert!(batch.iter().all(|c| space.contains(c)));
    }

    #[test]
    fn random_caps_at_space_size() {
        let space = SearchSpace::decoupled_m5();
        let mut s = RandomSearch::new(2);
        let batch = s.sample(&space, 1000).unwrap();
        assert_eq!(batch.len(), 48);
    }

    #[test]
    fn lhs_draws_requested_count_of_valid_configs() {
        let space = SearchSpace::table1();
        let mut s = LatinHypercube::new(3);
        let batch = s.sample(&space, 20).unwrap();
        assert_eq!(batch.len(), 20);
        assert!(batch.iter().all(|c| space.contains(c)));
        let mut dedup = batch.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
    }

    #[test]
    fn lhs_stratifies_the_share_axis() {
        // With n = 8 samples and 8 share levels, LHS must touch ≥ 6
        // distinct share values (allowing for jitter at stratum edges);
        // uniform sampling would frequently repeat.
        let space = SearchSpace::table1();
        let mut s = LatinHypercube::new(7);
        let batch = s.sample(&space, 8).unwrap();
        let mut shares: Vec<u32> = batch.iter().map(|c| c.cpu_milli()).collect();
        shares.sort_unstable();
        shares.dedup();
        assert!(shares.len() >= 6, "only {} distinct shares", shares.len());
    }

    #[test]
    fn lhs_respects_sliced_spaces() {
        let mut space = SearchSpace::table1();
        space.slice_failed_memory(512);
        let mut s = LatinHypercube::new(5);
        let batch = s.sample(&space, 15).unwrap();
        assert!(batch.iter().all(|c| c.memory_mib() > 512));
    }

    #[test]
    fn samplers_are_reproducible_per_seed() {
        let space = SearchSpace::table1();
        let a = RandomSearch::new(9).sample(&space, 10).unwrap();
        let b = RandomSearch::new(9).sample(&space, 10).unwrap();
        assert_eq!(a, b);
        let c = LatinHypercube::new(9).sample(&space, 10).unwrap();
        let d = LatinHypercube::new(9).sample(&space, 10).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn zero_and_empty_edge_cases() {
        let space = SearchSpace::table1();
        assert!(LatinHypercube::new(1).sample(&space, 0).unwrap().is_empty());
        let mut empty = SearchSpace::table1();
        empty.slice_failed_memory(4096);
        assert!(LatinHypercube::new(1).sample(&empty, 5).unwrap().is_empty());
    }

    #[test]
    fn sampler_names() {
        assert_eq!(RandomSearch::new(0).name(), "Random");
        assert_eq!(LatinHypercube::new(0).name(), "LHS");
    }
}

//! Property-based tests for the optimizer's invariants.

use freedom_optimizer::pareto::{front_distance, pareto_front, pareto_front_indices};
use freedom_optimizer::{expected_improvement, LatinHypercube, RandomSearch, Sampler, SearchSpace};
use proptest::prelude::*;

proptest! {
    #[test]
    fn slicing_never_leaves_low_memory_configs(levels in prop::collection::vec(0u32..3000, 1..6)) {
        let mut space = SearchSpace::table1();
        let mut watermark = 0;
        for level in levels {
            space.slice_failed_memory(level);
            watermark = watermark.max(level);
            prop_assert!(space.configs().iter().all(|c| c.memory_mib() > watermark));
        }
        // The watermark is the max of all observed failures.
        if watermark > 0 {
            prop_assert_eq!(space.failed_memory_mib(), Some(watermark));
        }
    }

    #[test]
    fn pareto_front_members_are_mutually_nondominated(
        pts in prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 1..60),
    ) {
        let front = pareto_front(&pts);
        prop_assert!(!front.is_empty());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    let dominates = b.0 <= a.0 && b.1 <= a.1 && (b.0 < a.0 || b.1 < a.1);
                    prop_assert!(!dominates, "{b:?} dominates {a:?} inside the front");
                }
            }
        }
        // Every excluded point is dominated by someone.
        let idx = pareto_front_indices(&pts);
        for (i, p) in pts.iter().enumerate() {
            if !idx.contains(&i) {
                let dominated = pts.iter().enumerate().any(|(j, q)| {
                    j != i && q.0 <= p.0 && q.1 <= p.1 && (q.0 < p.0 || q.1 < p.1)
                });
                prop_assert!(dominated);
            }
        }
    }

    #[test]
    fn front_distance_is_zero_iff_fronts_coincide(
        pts in prop::collection::vec((0.5f64..50.0, 0.5f64..50.0), 1..20),
    ) {
        let front = pareto_front(&pts);
        let (dt, dc) = front_distance(&front, &front).unwrap();
        prop_assert_eq!(dt, 0.0);
        prop_assert_eq!(dc, 0.0);
    }

    #[test]
    fn ei_is_nonnegative_and_monotone_in_best(
        mean in -50.0f64..50.0,
        std in 0.0f64..10.0,
        best_lo in -50.0f64..50.0,
        delta in 0.0f64..20.0,
    ) {
        let lo = expected_improvement(mean, std, best_lo, 0.01);
        let hi = expected_improvement(mean, std, best_lo + delta, 0.01);
        prop_assert!(lo >= 0.0);
        // A worse incumbent (higher best) can only increase improvement.
        prop_assert!(hi >= lo - 1e-12);
    }

    #[test]
    fn samplers_return_distinct_in_space_configs(
        seed in 0u64..5000,
        n in 1usize..40,
    ) {
        let space = SearchSpace::table1();
        for batch in [
            RandomSearch::new(seed).sample(&space, n).unwrap(),
            LatinHypercube::new(seed).sample(&space, n).unwrap(),
        ] {
            prop_assert_eq!(batch.len(), n);
            let mut dedup = batch.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), n, "duplicates in batch");
            prop_assert!(batch.iter().all(|c| space.contains(c)));
        }
    }
}

//! Property-based tests for the workload models.

use freedom_cluster::InstanceFamily;
use freedom_workloads::{noise::NoiseModel, ExecOutcome, FunctionKind, ResourceEnv};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = FunctionKind> {
    prop::sample::select(FunctionKind::ALL.to_vec())
}

fn any_family() -> impl Strategy<Value = InstanceFamily> {
    prop::sample::select(InstanceFamily::SEARCH_SPACE.to_vec())
}

proptest! {
    #[test]
    fn outcomes_are_finite_and_positive(
        kind in any_kind(),
        family in any_family(),
        share_milli in 250u32..2000,
        mem in prop::sample::select(vec![128u32, 256, 512, 768, 1024, 2048]),
        seed in 0u64..1000,
    ) {
        let env = ResourceEnv::new(family, share_milli as f64 / 1000.0, mem).unwrap();
        let outcome = kind.execute(&kind.default_input(), &env, seed);
        let t = outcome.elapsed_secs();
        prop_assert!(t.is_finite() && t > 0.0);
        if let ExecOutcome::Completed { peak_mem_mib, .. } = outcome {
            prop_assert!(peak_mem_mib <= mem, "peak {peak_mem_mib} within limit {mem}");
        }
    }

    #[test]
    fn more_cpu_never_hurts(
        kind in any_kind(),
        family in any_family(),
        lo_milli in 250u32..1000,
    ) {
        // Noise-free monotonicity: raising the share can only shrink the
        // wall time (or leave it unchanged for network phases).
        let lo = lo_milli as f64 / 1000.0;
        let hi = lo * 2.0;
        let mut quiet = NoiseModel::new(0, 0.0);
        let env_lo = ResourceEnv::new(family, lo, 2048).unwrap();
        let env_hi = ResourceEnv::new(family, hi, 2048).unwrap();
        let t_lo = kind
            .execute_with_noise(&kind.default_input(), &env_lo, &mut quiet)
            .elapsed_secs();
        let t_hi = kind
            .execute_with_noise(&kind.default_input(), &env_hi, &mut quiet)
            .elapsed_secs();
        prop_assert!(t_hi <= t_lo + 1e-9, "{kind} on {family}: {t_hi} > {t_lo}");
    }

    #[test]
    fn oom_depends_only_on_memory_not_cpu(
        kind in any_kind(),
        family in any_family(),
        share_milli in 250u32..2000,
        mem in prop::sample::select(vec![128u32, 256, 512, 768, 1024, 2048]),
    ) {
        let env = ResourceEnv::new(family, share_milli as f64 / 1000.0, mem).unwrap();
        let required = kind.demand(&kind.default_input()).required_mem_mib;
        let outcome = kind.execute(&kind.default_input(), &env, 3);
        prop_assert_eq!(outcome.is_success(), required <= mem);
    }

    #[test]
    fn failure_threshold_is_monotone_in_memory(
        kind in any_kind(),
        family in any_family(),
    ) {
        // §5.1 slicing assumption: if a function fails at limit m, it fails
        // at every limit below m.
        let env_of = |mem: u32| ResourceEnv::new(family, 1.0, mem).unwrap();
        let levels = [128u32, 256, 512, 768, 1024, 2048];
        let mut seen_success = false;
        for mem in levels {
            let ok = kind.execute(&kind.default_input(), &env_of(mem), 9).is_success();
            if seen_success {
                prop_assert!(ok, "{kind}: success at smaller limit but OOM at {mem}");
            }
            seen_success |= ok;
        }
    }
}

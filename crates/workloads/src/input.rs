//! Input datasets for the benchmark functions.
//!
//! The paper executes every function on multiple publicly-sourced input
//! samples (§3, §5.3): five videos for `transcode`, five images for the
//! image functions and `ocr`, matrix sizes N ∈ {1000, 5000, 7500} for
//! `linpack`, and five objects for `s3`. One sample per function is the
//! *default* used for the generic optimization model.

use crate::FunctionKind;
use std::fmt;

/// Identifier of an input sample, e.g. `video-3`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputId(pub String);

impl fmt::Display for InputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A concrete input sample with the characteristics that drive the
/// function's resource demand.
#[derive(Debug, Clone, PartialEq)]
pub enum InputData {
    /// A video clip (for `transcode`).
    Video {
        /// Sample id, e.g. `video-2`.
        id: InputId,
        /// Clip length in seconds.
        duration_secs: f64,
        /// Frame size in megapixels.
        megapixels: f64,
    },
    /// A still image (for `faceblur`, `facedetect`, `ocr`).
    Image {
        /// Sample id, e.g. `image-4`.
        id: InputId,
        /// Image size in megapixels.
        megapixels: f64,
    },
    /// A dense matrix dimension (for `linpack`).
    Matrix {
        /// Problem size N (the matrix is N×N doubles).
        n: u32,
    },
    /// An object to copy between buckets (for `s3`).
    Object {
        /// Sample id, e.g. `video-1` (the paper reuses the video files).
        id: InputId,
        /// Object size in MB.
        size_mb: f64,
    },
}

impl InputData {
    /// The sample's display id (`linpack` uses the matrix size).
    pub fn id(&self) -> InputId {
        match self {
            Self::Video { id, .. } | Self::Image { id, .. } | Self::Object { id, .. } => id.clone(),
            Self::Matrix { n } => InputId(n.to_string()),
        }
    }
}

fn video(idx: usize, duration_secs: f64, megapixels: f64) -> InputData {
    InputData::Video {
        id: InputId(format!("video-{idx}")),
        duration_secs,
        megapixels,
    }
}

fn image(idx: usize, megapixels: f64) -> InputData {
    InputData::Image {
        id: InputId(format!("image-{idx}")),
        megapixels,
    }
}

fn object(idx: usize, size_mb: f64) -> InputData {
    InputData::Object {
        id: InputId(format!("video-{idx}")),
        size_mb,
    }
}

impl FunctionKind {
    /// The input samples used in the study for this function, in dataset
    /// order. The spread across samples is calibrated so that per-input
    /// best-configuration differences stay within the ~20% the paper
    /// reports (§5.3), while absolute execution times vary several-fold.
    pub fn inputs(self) -> Vec<InputData> {
        match self {
            Self::Transcode => vec![
                video(1, 12.0, 0.9),
                video(2, 22.0, 2.1),
                video(3, 30.0, 2.1),
                video(4, 45.0, 0.9),
                video(5, 60.0, 2.1),
            ],
            Self::Faceblur | Self::Facedetect => vec![
                image(1, 0.6),
                image(2, 1.0),
                image(3, 1.3),
                image(4, 2.0),
                image(5, 3.1),
            ],
            Self::Ocr => vec![
                image(1, 0.7),
                image(2, 1.0),
                image(3, 1.4),
                image(4, 1.9),
                image(5, 2.6),
            ],
            Self::Linpack => vec![
                InputData::Matrix { n: 1000 },
                InputData::Matrix { n: 5000 },
                InputData::Matrix { n: 7500 },
            ],
            Self::S3 => vec![
                object(1, 18.0),
                object(2, 32.0),
                object(3, 50.0),
                object(4, 68.0),
                object(5, 95.0),
            ],
        }
    }

    /// The default input sample (the one the generic model is trained on).
    pub fn default_input(self) -> InputData {
        match self {
            // Mid-sized samples, mirroring the paper's figure axes:
            // transcode best ET ≈ 40 s, linpack best ET ≈ 3.5 s (N=5000).
            Self::Transcode => self.inputs()[2].clone(),
            Self::Faceblur | Self::Facedetect => self.inputs()[2].clone(),
            Self::Ocr => self.inputs()[2].clone(),
            Self::Linpack => self.inputs()[1].clone(),
            Self::S3 => self.inputs()[2].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_sizes_match_the_paper() {
        assert_eq!(FunctionKind::Transcode.inputs().len(), 5);
        assert_eq!(FunctionKind::Faceblur.inputs().len(), 5);
        assert_eq!(FunctionKind::Facedetect.inputs().len(), 5);
        assert_eq!(FunctionKind::Ocr.inputs().len(), 5);
        assert_eq!(FunctionKind::Linpack.inputs().len(), 3);
        assert_eq!(FunctionKind::S3.inputs().len(), 5);
    }

    #[test]
    fn default_inputs_are_members_of_the_dataset() {
        for kind in FunctionKind::ALL {
            let def = kind.default_input();
            assert!(kind.inputs().contains(&def), "{kind}");
        }
    }

    #[test]
    fn linpack_inputs_match_figure_7() {
        let ns: Vec<u32> = FunctionKind::Linpack
            .inputs()
            .iter()
            .map(|i| match i {
                InputData::Matrix { n } => *n,
                other => panic!("unexpected input {other:?}"),
            })
            .collect();
        assert_eq!(ns, vec![1000, 5000, 7500]);
    }

    #[test]
    fn input_ids_are_stable() {
        let id = FunctionKind::Transcode.default_input().id();
        assert_eq!(id.to_string(), "video-3");
        let lin = InputData::Matrix { n: 7500 };
        assert_eq!(lin.id().to_string(), "7500");
    }
}

//! Measurement-noise model.
//!
//! The paper runs every (function, configuration) pair at least five times
//! and reports medians because real executions jitter. We reproduce that
//! with a mean-preserving multiplicative log-normal factor: a few percent
//! of run-to-run variation, deterministic for a fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default run-to-run coefficient of variation (≈3%), typical for warm
/// serverless invocations on shared VMs.
pub const DEFAULT_SIGMA: f64 = 0.03;

/// A seeded multiplicative noise source.
///
/// # Examples
///
/// ```
/// use freedom_workloads::noise::NoiseModel;
///
/// let mut a = NoiseModel::new(7, 0.03);
/// let mut b = NoiseModel::new(7, 0.03);
/// assert_eq!(a.factor(), b.factor()); // deterministic per seed
/// let f = a.factor();
/// assert!(f > 0.8 && f < 1.2);
/// ```
#[derive(Debug, Clone)]
pub struct NoiseModel {
    rng: StdRng,
    sigma: f64,
}

impl NoiseModel {
    /// Creates a noise model with standard deviation `sigma` (clamped to
    /// `[0, 0.5]`: beyond that the model would no longer represent warm
    /// invocations).
    pub fn new(seed: u64, sigma: f64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            sigma: sigma.clamp(0.0, 0.5),
        }
    }

    /// Creates the default 3%-jitter model.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(seed, DEFAULT_SIGMA)
    }

    /// The configured sigma.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws a mean-preserving log-normal factor (`E[factor] = 1`).
    pub fn factor(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let z = self.standard_normal();
        // ln X ~ N(-sigma^2/2, sigma^2) gives E[X] = 1.
        (self.sigma * z - self.sigma * self.sigma / 2.0).exp()
    }

    /// Box–Muller standard normal draw.
    fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_exact() {
        let mut n = NoiseModel::new(1, 0.0);
        for _ in 0..10 {
            assert_eq!(n.factor(), 1.0);
        }
    }

    #[test]
    fn factors_are_positive_and_near_one() {
        let mut n = NoiseModel::with_seed(99);
        for _ in 0..1000 {
            let f = n.factor();
            assert!(f > 0.0);
            assert!(f > 0.7 && f < 1.3, "3% sigma should stay near 1, got {f}");
        }
    }

    #[test]
    fn mean_is_approximately_one() {
        let mut n = NoiseModel::with_seed(5);
        let total: f64 = (0..20_000).map(|_| n.factor()).sum();
        let mean = total / 20_000.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn sigma_is_clamped() {
        assert_eq!(NoiseModel::new(1, 2.0).sigma(), 0.5);
        assert_eq!(NoiseModel::new(1, -1.0).sigma(), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseModel::with_seed(1);
        let mut b = NoiseModel::with_seed(2);
        assert_ne!(a.factor(), b.factor());
    }
}

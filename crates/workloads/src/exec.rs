//! Execution simulation: demand × resources → outcome.

use freedom_cluster::{CpuCgroup, InstanceFamily, MemCgroup};

use crate::noise::NoiseModel;
use crate::{effective_speed, FunctionKind, InputData};

/// Constant per-invocation overhead (runtime init on a warm container).
pub const STARTUP_OVERHEAD_SECS: f64 = 0.15;

/// The resource environment of one invocation: the paper's decoupled
/// (CPU share, memory limit, instance family) triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEnv {
    /// Instance family the sandbox runs on.
    pub family: InstanceFamily,
    cpu: CpuCgroup,
    mem_limit_mib: u32,
}

impl ResourceEnv {
    /// Creates an environment; returns `None` for a non-positive share or
    /// zero memory.
    pub fn new(family: InstanceFamily, cpu_share: f64, mem_limit_mib: u32) -> Option<Self> {
        Some(Self {
            family,
            cpu: CpuCgroup::new(cpu_share)?,
            mem_limit_mib: MemCgroup::new(mem_limit_mib)?.limit_mib(),
        })
    }

    /// The configured CPU share.
    pub fn cpu_share(&self) -> f64 {
        self.cpu.share()
    }

    /// The configured memory limit in MiB.
    pub fn mem_limit_mib(&self) -> u32 {
        self.mem_limit_mib
    }
}

/// Result of one simulated invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecOutcome {
    /// The function ran to completion.
    Completed {
        /// Wall-clock duration in seconds (including startup overhead).
        duration_secs: f64,
        /// Peak memory footprint in MiB.
        peak_mem_mib: u32,
    },
    /// The function was OOM-killed by its memory cgroup.
    OutOfMemory {
        /// Wall-clock seconds burned before the kill.
        elapsed_secs: f64,
        /// Footprint the function tried to reach, in MiB.
        attempted_mib: u32,
    },
}

impl ExecOutcome {
    /// Whether the invocation completed successfully.
    pub fn is_success(&self) -> bool {
        matches!(self, Self::Completed { .. })
    }

    /// Wall-clock duration of the invocation (even failed ones burn time).
    pub fn elapsed_secs(&self) -> f64 {
        match self {
            Self::Completed { duration_secs, .. } => *duration_secs,
            Self::OutOfMemory { elapsed_secs, .. } => *elapsed_secs,
        }
    }
}

impl FunctionKind {
    /// Simulates one invocation under `env`, with measurement noise drawn
    /// from `seed`.
    ///
    /// The model composes the pieces the way the real system would:
    /// 1. the memory cgroup OOM-kills footprints above the limit early in
    ///    the run (allocations happen while inputs load);
    /// 2. CPU work runs under the CFS-style share
    ///    ([`CpuCgroup::wall_time_for`]) at the family's effective speed;
    /// 3. the network phase is CPU-independent wall time;
    /// 4. a mean-preserving log-normal factor models run-to-run jitter.
    pub fn execute(self, input: &InputData, env: &ResourceEnv, seed: u64) -> ExecOutcome {
        let mut noise = NoiseModel::with_seed(seed ^ 0x9e37_79b9_7f4a_7c15);
        self.execute_with_noise(input, env, &mut noise)
    }

    /// Like [`Self::execute`] but drawing from a caller-managed noise
    /// source (so repeated invocations see fresh jitter).
    pub fn execute_with_noise(
        self,
        input: &InputData,
        env: &ResourceEnv,
        noise: &mut NoiseModel,
    ) -> ExecOutcome {
        let demand = self.demand(input);

        // 1. Memory check: the cgroup kills the function while it is still
        //    loading its input, after a fraction of the would-be runtime.
        let mut mem = MemCgroup::new(env.mem_limit_mib).expect("validated at construction");
        if let Err(oom) = mem.charge(demand.required_mem_mib) {
            let elapsed = (STARTUP_OVERHEAD_SECS + 0.4) * noise.factor();
            return ExecOutcome::OutOfMemory {
                elapsed_secs: elapsed,
                attempted_mib: oom.attempted_mib,
            };
        }

        // 2. CPU phases at the family's effective speed for this function.
        let speed = effective_speed(self, env.family);
        let serial_wall = env.cpu.wall_time_for(demand.serial_cpu_secs / speed, 1.0);
        let parallel_wall = env
            .cpu
            .wall_time_for(demand.parallel_cpu_secs / speed, demand.max_parallelism);

        // 3. Network phase + fixed startup overhead.
        let base = STARTUP_OVERHEAD_SECS + serial_wall + parallel_wall + demand.network_secs;

        // 4. Run-to-run jitter.
        let duration = base * noise.factor();
        ExecOutcome::Completed {
            duration_secs: duration,
            peak_mem_mib: demand.required_mem_mib,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(family: InstanceFamily, share: f64, mem: u32) -> ResourceEnv {
        ResourceEnv::new(family, share, mem).expect("valid env")
    }

    fn duration(kind: FunctionKind, env: &ResourceEnv) -> f64 {
        // Noise-free duration for shape assertions.
        let mut quiet = NoiseModel::new(0, 0.0);
        match kind.execute_with_noise(&kind.default_input(), env, &mut quiet) {
            ExecOutcome::Completed { duration_secs, .. } => duration_secs,
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn transcode_speeds_up_with_share() {
        let slow = duration(FunctionKind::Transcode, &env(InstanceFamily::M5, 1.0, 1024));
        let fast = duration(FunctionKind::Transcode, &env(InstanceFamily::M5, 2.0, 1024));
        let speedup = slow / fast;
        assert!(speedup > 1.8, "parallel function should scale: {speedup}");
    }

    #[test]
    fn faceblur_does_not_speed_up_past_one_vcpu() {
        let one = duration(FunctionKind::Faceblur, &env(InstanceFamily::M5, 1.0, 512));
        let two = duration(FunctionKind::Faceblur, &env(InstanceFamily::M5, 2.0, 512));
        assert!(
            (one - two).abs() / one < 0.01,
            "serial function: {one} vs {two}"
        );
    }

    #[test]
    fn s3_plateaus_below_one_vcpu() {
        // The paper: s3's execution time plateaus with CPU share < 1 (§4.1).
        let half = duration(FunctionKind::S3, &env(InstanceFamily::M5, 0.5, 256));
        let full = duration(FunctionKind::S3, &env(InstanceFamily::M5, 1.0, 256));
        assert!((half - full) / full < 0.25, "{half} vs {full}");
    }

    #[test]
    fn linpack_ooms_below_its_matrix_footprint() {
        let big = InputData::Matrix { n: 7500 };
        let small_mem = env(InstanceFamily::M5, 1.0, 512);
        let outcome = FunctionKind::Linpack.execute(&big, &small_mem, 1);
        assert!(!outcome.is_success());
        assert!(outcome.elapsed_secs() > 0.0);
        let big_mem = env(InstanceFamily::M5, 1.0, 1024);
        assert!(FunctionKind::Linpack
            .execute(&big, &big_mem, 1)
            .is_success());
    }

    #[test]
    fn transcode_ooms_at_smallest_memory() {
        let outcome = FunctionKind::Transcode.execute(
            &FunctionKind::Transcode.default_input(),
            &env(InstanceFamily::M5, 1.0, 128),
            1,
        );
        assert!(!outcome.is_success());
    }

    #[test]
    fn best_family_for_faceblur_is_graviton_compute() {
        let m5 = duration(FunctionKind::Faceblur, &env(InstanceFamily::M5, 1.0, 512));
        let c6g = duration(FunctionKind::Faceblur, &env(InstanceFamily::C6g, 1.0, 512));
        assert!(c6g < m5);
        let gain = m5 / c6g;
        assert!((1.05..=1.45).contains(&gain), "gain {gain}");
    }

    #[test]
    fn worst_to_best_spread_is_order_of_magnitude_for_transcode() {
        // Figure 1: worst configuration up to ~15x slower than best.
        let mut best = f64::INFINITY;
        let mut worst: f64 = 0.0;
        for family in InstanceFamily::SEARCH_SPACE {
            for &share in &[0.25, 0.5, 1.0, 2.0] {
                let d = duration(FunctionKind::Transcode, &env(family, share, 2048));
                best = best.min(d);
                worst = worst.max(d);
            }
        }
        let spread = worst / best;
        assert!(spread > 8.0, "expected ~order of magnitude, got {spread}");
        assert!(spread < 25.0, "spread implausibly large: {spread}");
    }

    #[test]
    fn noise_is_reproducible_per_seed() {
        let e = env(InstanceFamily::M5, 1.0, 1024);
        let a = FunctionKind::Ocr.execute(&FunctionKind::Ocr.default_input(), &e, 77);
        let b = FunctionKind::Ocr.execute(&FunctionKind::Ocr.default_input(), &e, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn default_durations_match_calibration_targets() {
        // Loose bands around the paper's figure axes (Figs. 5-6).
        let transcode = duration(FunctionKind::Transcode, &env(InstanceFamily::C5, 2.0, 1024));
        assert!((30.0..60.0).contains(&transcode), "transcode {transcode}");
        let linpack = duration(FunctionKind::Linpack, &env(InstanceFamily::C6g, 1.0, 512));
        assert!((2.0..6.0).contains(&linpack), "linpack {linpack}");
        let s3 = duration(FunctionKind::S3, &env(InstanceFamily::M5, 1.0, 256));
        assert!((1.0..3.5).contains(&s3), "s3 {s3}");
    }
}

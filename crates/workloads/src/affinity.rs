//! Per-architecture speed affinities of the benchmark functions.
//!
//! The paper observes that the right instance type yields 5–40% better
//! execution time than m5 (§4.1, Figure 3a), and that which family wins is
//! function-dependent: the Go image libraries run fastest on Graviton2,
//! while the x86-optimized C/C++ codecs favour Intel. We encode those
//! relative speeds here, normalized to m5 (Intel, general-purpose) = 1.0.

use freedom_cluster::{Architecture, InstanceFamily};

use crate::FunctionKind;

/// Relative CPU speed of an architecture for a function (m5 Intel = 1.0).
pub fn arch_speed(kind: FunctionKind, arch: Architecture) -> f64 {
    use Architecture::*;
    match kind {
        // ffmpeg-style codec: hand-tuned x86 SIMD; Graviton2 lags.
        FunctionKind::Transcode => match arch {
            IntelX86 => 1.00,
            Amd => 0.90,
            Graviton2 => 0.72,
        },
        // Pure-Go stackblur: Graviton2's wide cores shine.
        FunctionKind::Faceblur => match arch {
            IntelX86 => 1.00,
            Amd => 0.95,
            Graviton2 => 1.22,
        },
        // Pure-Go pigo face detector.
        FunctionKind::Facedetect => match arch {
            IntelX86 => 1.00,
            Amd => 0.96,
            Graviton2 => 1.18,
        },
        // Tesseract-style C++ OCR: mildly x86-leaning.
        FunctionKind::Ocr => match arch {
            IntelX86 => 1.00,
            Amd => 0.97,
            Graviton2 => 0.85,
        },
        // Dense FP solve: Graviton2's NEON pipelines do well.
        FunctionKind::Linpack => match arch {
            IntelX86 => 1.00,
            Amd => 0.93,
            Graviton2 => 1.12,
        },
        // Network-bound copy: CPU architecture barely matters.
        FunctionKind::S3 => match arch {
            IntelX86 => 1.00,
            Amd => 0.99,
            Graviton2 => 1.01,
        },
    }
}

/// Clock-speed bonus of compute-optimized (`c`) families over their
/// general-purpose siblings, per function.
///
/// `c` instances sustain higher clocks; CPU-bound functions benefit nearly
/// fully, the network-bound `s3` barely at all.
pub fn compute_bonus(kind: FunctionKind) -> f64 {
    match kind {
        FunctionKind::Transcode => 1.12,
        FunctionKind::Faceblur => 1.06,
        FunctionKind::Facedetect => 1.06,
        FunctionKind::Ocr => 1.09,
        FunctionKind::Linpack => 1.07,
        FunctionKind::S3 => 1.005,
    }
}

/// Effective CPU speed of a family for a function: architecture affinity
/// times the compute-optimized clock bonus where applicable.
///
/// # Examples
///
/// ```
/// use freedom_cluster::InstanceFamily;
/// use freedom_workloads::{effective_speed, FunctionKind};
///
/// let m5 = effective_speed(FunctionKind::Faceblur, InstanceFamily::M5);
/// let c6g = effective_speed(FunctionKind::Faceblur, InstanceFamily::C6g);
/// assert_eq!(m5, 1.0);
/// assert!(c6g > 1.2); // Go code on Graviton2 compute-optimized
/// ```
pub fn effective_speed(kind: FunctionKind, family: InstanceFamily) -> f64 {
    let base = arch_speed(kind, family.architecture());
    if family.is_compute_optimized() {
        base * compute_bonus(kind)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m5_is_the_reference() {
        for kind in FunctionKind::ALL {
            assert_eq!(effective_speed(kind, InstanceFamily::M5), 1.0, "{kind}");
        }
    }

    #[test]
    fn best_family_beats_m5_by_5_to_40_percent() {
        // Figure 3a: choosing the right family yields 5-40% better ET.
        for kind in FunctionKind::ALL {
            if kind == FunctionKind::S3 {
                continue; // network-bound: family barely matters
            }
            let best = InstanceFamily::SEARCH_SPACE
                .iter()
                .map(|&f| effective_speed(kind, f))
                .fold(f64::MIN, f64::max);
            assert!(
                (1.05..=1.40).contains(&best),
                "{kind}: best speed {best} outside the paper's 5-40% band"
            );
        }
    }

    #[test]
    fn go_functions_prefer_graviton() {
        for kind in [FunctionKind::Faceblur, FunctionKind::Facedetect] {
            assert!(
                arch_speed(kind, Architecture::Graviton2)
                    > arch_speed(kind, Architecture::IntelX86)
            );
        }
    }

    #[test]
    fn codec_functions_prefer_intel() {
        for kind in [FunctionKind::Transcode, FunctionKind::Ocr] {
            assert!(
                arch_speed(kind, Architecture::IntelX86)
                    > arch_speed(kind, Architecture::Graviton2)
            );
        }
    }

    #[test]
    fn compute_bonus_is_mild_and_positive() {
        for kind in FunctionKind::ALL {
            let b = compute_bonus(kind);
            assert!((1.0..=1.15).contains(&b), "{kind}: {b}");
        }
    }

    #[test]
    fn all_speeds_are_positive() {
        for kind in FunctionKind::ALL {
            for fam in InstanceFamily::ALL {
                assert!(effective_speed(kind, fam) > 0.0);
            }
        }
    }
}

//! Resource demand of a function execution on a given input.
//!
//! A [`Demand`] expresses everything the simulator needs to predict an
//! execution: CPU seconds split into serial and parallelizable parts
//! (measured at the m5 reference speed), the memory footprint, and the
//! wall-clock network phase. The split encodes Table 2's "important
//! resources" column.

use crate::{FunctionKind, InputData};

/// Resource demand of one invocation, at reference speed (m5, one vCPU).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// CPU seconds that cannot be parallelized.
    pub serial_cpu_secs: f64,
    /// CPU seconds that parallelize up to [`Self::max_parallelism`] ways.
    pub parallel_cpu_secs: f64,
    /// Maximum useful parallel width, in vCPUs.
    pub max_parallelism: f64,
    /// Memory footprint in MiB; limits below this OOM-kill the function.
    pub required_mem_mib: u32,
    /// Wall-clock seconds of network transfer, independent of CPU share.
    pub network_secs: f64,
}

impl Demand {
    /// Total CPU seconds at reference speed.
    pub fn total_cpu_secs(&self) -> f64 {
        self.serial_cpu_secs + self.parallel_cpu_secs
    }
}

impl FunctionKind {
    /// Computes the demand for an input.
    ///
    /// Mismatched input kinds (e.g. a matrix handed to `transcode`) fall
    /// back to the function's default input demand — mirroring a gateway
    /// that rejects bad payloads before they reach the function — so the
    /// simulator itself never fails on input shape.
    pub fn demand(self, input: &InputData) -> Demand {
        match (self, input) {
            (
                FunctionKind::Transcode,
                InputData::Video {
                    duration_secs,
                    megapixels,
                    ..
                },
            ) => {
                // Encoding cost scales with pixels pushed; ffmpeg's frame
                // pipeline parallelizes well beyond the 2-vCPU cap of the
                // search space, with a short serial mux/demux tail.
                let work = duration_secs * megapixels * 1.6;
                Demand {
                    serial_cpu_secs: 1.0 + 0.02 * work,
                    parallel_cpu_secs: work,
                    max_parallelism: 4.0,
                    required_mem_mib: (150.0 + 40.0 * megapixels).round() as u32,
                    network_secs: 0.0,
                }
            }
            (FunctionKind::Faceblur, InputData::Image { megapixels, .. }) => Demand {
                // Single-threaded Go blur, linear in pixels. The Go runtime
                // baseline dominates the footprint, so every image of the
                // dataset lands in the same memory level except the
                // smallest ones — configurations transfer across inputs.
                serial_cpu_secs: 4.0 * megapixels,
                parallel_cpu_secs: 0.0,
                max_parallelism: 1.0,
                required_mem_mib: (80.0 + 40.0 * megapixels).round() as u32,
                network_secs: 0.0,
            },
            (FunctionKind::Facedetect, InputData::Image { megapixels, .. }) => Demand {
                // Single-threaded pigo cascade, linear in pixels.
                serial_cpu_secs: 3.8 * megapixels,
                parallel_cpu_secs: 0.0,
                max_parallelism: 1.0,
                required_mem_mib: (80.0 + 40.0 * megapixels).round() as u32,
                network_secs: 0.0,
            },
            (FunctionKind::Ocr, InputData::Image { megapixels, .. }) => Demand {
                // Tesseract runs page segmentation serially, then
                // recognizes blocks in parallel (up to ~2 useful threads).
                serial_cpu_secs: 1.4 + 0.4 * megapixels,
                parallel_cpu_secs: 11.0 * megapixels,
                max_parallelism: 2.0,
                required_mem_mib: (180.0 + 80.0 * megapixels).round() as u32,
                network_secs: 0.0,
            },
            (FunctionKind::Linpack, InputData::Matrix { n }) => {
                // O(n^3) FP solve on an n×n matrix of f64 (8 n^2 bytes),
                // plus the Python/NumPy runtime baseline.
                let n = *n as f64;
                Demand {
                    serial_cpu_secs: 0.0326 * (n / 1000.0).powi(3),
                    parallel_cpu_secs: 0.0,
                    max_parallelism: 1.0,
                    required_mem_mib: (70.0 + 8.0 * n * n / 1.0e6).round() as u32,
                    network_secs: 0.0,
                }
            }
            (FunctionKind::S3, InputData::Object { size_mb, .. }) => Demand {
                // Checksumming + SDK overhead on the CPU; download and
                // upload at ~60 MB/s each on the VM NIC. The SDK streams
                // the object through a bounded multipart buffer, so the
                // footprint grows at only half the object size.
                serial_cpu_secs: 0.15 + 0.003 * size_mb,
                parallel_cpu_secs: 0.0,
                max_parallelism: 1.0,
                required_mem_mib: (40.0 + 0.5 * size_mb).round() as u32,
                network_secs: 2.0 * size_mb / 60.0,
            },
            // Input shape mismatch: fall back to the default input.
            (kind, _) => kind.demand(&kind.default_input()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcode_is_parallel_dominated() {
        let d = FunctionKind::Transcode.demand(&FunctionKind::Transcode.default_input());
        assert!(d.parallel_cpu_secs > 10.0 * d.serial_cpu_secs);
        assert!(d.max_parallelism >= 2.0);
    }

    #[test]
    fn image_functions_are_serial() {
        for kind in [FunctionKind::Faceblur, FunctionKind::Facedetect] {
            let d = kind.demand(&kind.default_input());
            assert_eq!(d.parallel_cpu_secs, 0.0);
            assert_eq!(d.max_parallelism, 1.0);
        }
    }

    #[test]
    fn linpack_memory_cliff_matches_matrix_size() {
        let d1000 = FunctionKind::Linpack.demand(&InputData::Matrix { n: 1000 });
        let d7500 = FunctionKind::Linpack.demand(&InputData::Matrix { n: 7500 });
        // 8 MB matrix + runtime for N=1000 fits the smallest 128 MiB limit.
        assert!(d1000.required_mem_mib <= 128);
        // N=7500 needs a 450 MB matrix: only 768 MiB+ limits survive.
        assert!(d7500.required_mem_mib > 512);
        assert!(d7500.required_mem_mib <= 768);
    }

    #[test]
    fn s3_is_network_dominated() {
        let d = FunctionKind::S3.demand(&FunctionKind::S3.default_input());
        assert!(d.network_secs > 3.0 * d.total_cpu_secs());
    }

    #[test]
    fn bigger_inputs_demand_more() {
        for kind in FunctionKind::ALL {
            let inputs = kind.inputs();
            let first = kind.demand(&inputs[0]);
            let last = kind.demand(&inputs[inputs.len() - 1]);
            assert!(
                last.total_cpu_secs() + last.network_secs
                    > first.total_cpu_secs() + first.network_secs,
                "{kind}"
            );
            assert!(last.required_mem_mib >= first.required_mem_mib, "{kind}");
        }
    }

    #[test]
    fn mismatched_input_falls_back_to_default() {
        let via_matrix = FunctionKind::Transcode.demand(&InputData::Matrix { n: 9 });
        let via_default = FunctionKind::Transcode.demand(&FunctionKind::Transcode.default_input());
        assert_eq!(via_matrix, via_default);
    }

    #[test]
    fn ocr_parallelism_is_capped_at_two() {
        let d = FunctionKind::Ocr.demand(&FunctionKind::Ocr.default_input());
        assert_eq!(d.max_parallelism, 2.0);
        assert!(d.parallel_cpu_secs > d.serial_cpu_secs);
    }
}

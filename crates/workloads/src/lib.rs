//! Performance models of the paper's six benchmark functions (Table 2).
//!
//! The study treats each function as a black box and only observes its
//! execution time, memory footprint, and failures under different resource
//! configurations. This crate provides calibrated parametric stand-ins for
//! the real binaries (ffmpeg, pigo, stackblur, tesseract, linpack, S3 I/O):
//! each [`FunctionKind`] maps an input to a [`Demand`] — serial and parallel
//! CPU work, memory footprint, and a network phase — which the simulated
//! cgroups of [`freedom_cluster`] then turn into a wall-clock outcome.
//!
//! Calibration targets the *shapes* the paper reports, not its absolute
//! numbers (§2, §4): `transcode`/`ocr` exploit >1 vCPU, `s3`'s execution
//! time plateaus below one vCPU, `linpack` has a memory cliff that OOMs
//! small limits at N=7500, Go-based image functions favour Graviton2, and
//! the worst configuration is an order of magnitude slower than the best.
//!
//! # Examples
//!
//! ```
//! use freedom_cluster::{CpuCgroup, InstanceFamily};
//! use freedom_workloads::{ExecOutcome, FunctionKind, ResourceEnv};
//!
//! let env = ResourceEnv::new(InstanceFamily::C5, 2.0, 1024).unwrap();
//! let input = FunctionKind::Transcode.default_input();
//! let outcome = FunctionKind::Transcode.execute(&input, &env, 42);
//! match outcome {
//!     ExecOutcome::Completed { duration_secs, .. } => assert!(duration_secs > 0.0),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! ```

mod affinity;
mod demand;
mod exec;
mod input;
pub mod noise;

pub use affinity::{arch_speed, compute_bonus, effective_speed};
pub use demand::Demand;
pub use exec::{ExecOutcome, ResourceEnv, STARTUP_OVERHEAD_SECS};
pub use input::{InputData, InputId};

use std::fmt;
use std::str::FromStr;

/// The six benchmark serverless functions of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FunctionKind {
    /// Video transcoding (Python driver around a C encoder); parallel.
    Transcode,
    /// Image face blurring (Go, stackblur); single-threaded.
    Faceblur,
    /// Image face detection (Go, pigo); single-threaded.
    Facedetect,
    /// Optical character recognition (Python around C++); parallel ≤ 2.
    Ocr,
    /// Dense linear-equation solving (FunctionBench); FP-heavy, memory cliff.
    Linpack,
    /// S3 object copy (download + upload); network-bound.
    S3,
}

impl FunctionKind {
    /// All six functions, in the paper's presentation order.
    pub const ALL: [FunctionKind; 6] = [
        FunctionKind::Transcode,
        FunctionKind::Faceblur,
        FunctionKind::Facedetect,
        FunctionKind::Ocr,
        FunctionKind::Linpack,
        FunctionKind::S3,
    ];

    /// Stable lowercase name, as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Self::Transcode => "transcode",
            Self::Faceblur => "faceblur",
            Self::Facedetect => "facedetect",
            Self::Ocr => "ocr",
            Self::Linpack => "linpack",
            Self::S3 => "s3",
        }
    }

    /// Whether the function can effectively use more than one vCPU
    /// (the paper: "Both transcode and ocr are able to effectively utilize
    /// > 1 vCPU").
    pub fn is_parallel(self) -> bool {
        matches!(self, Self::Transcode | Self::Ocr)
    }
}

impl fmt::Display for FunctionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl FromStr for FunctionKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "transcode" => Ok(Self::Transcode),
            "faceblur" => Ok(Self::Faceblur),
            "facedetect" => Ok(Self::Facedetect),
            "ocr" => Ok(Self::Ocr),
            "linpack" => Ok(Self::Linpack),
            "s3" => Ok(Self::S3),
            other => Err(format!("unknown function: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in FunctionKind::ALL {
            assert_eq!(kind.name().parse::<FunctionKind>().unwrap(), kind);
        }
        assert!("nope".parse::<FunctionKind>().is_err());
    }

    #[test]
    fn only_transcode_and_ocr_are_parallel() {
        let parallel: Vec<_> = FunctionKind::ALL
            .into_iter()
            .filter(|k| k.is_parallel())
            .collect();
        assert_eq!(parallel, vec![FunctionKind::Transcode, FunctionKind::Ocr]);
    }
}

//! The decoupled resource configuration (Table 1).

use std::fmt;

use freedom_cluster::InstanceFamily;

/// A point in the paper's resource-allocation space: CPU share, memory
/// limit, and instance family, chosen independently.
///
/// Shares are stored in milli-vCPUs internally so that configurations are
/// hashable and orderable (needed as search-space keys).
///
/// # Examples
///
/// ```
/// use freedom_cluster::InstanceFamily;
/// use freedom_faas::ResourceConfig;
///
/// let cfg = ResourceConfig::new(InstanceFamily::C5, 1.25, 512).unwrap();
/// assert_eq!(cfg.cpu_share(), 1.25);
/// assert_eq!(cfg.to_string(), "c5/1.25vCPU/512MiB");
/// assert!(ResourceConfig::new(InstanceFamily::C5, 0.0, 512).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceConfig {
    /// Instance family to run on.
    family: InstanceFamily,
    /// CPU share in milli-vCPUs (250 = 0.25 vCPU).
    cpu_milli: u32,
    /// Memory limit in MiB.
    memory_mib: u32,
}

impl ResourceConfig {
    /// Creates a configuration; returns `None` for non-positive shares or
    /// zero memory.
    pub fn new(family: InstanceFamily, cpu_share: f64, memory_mib: u32) -> Option<Self> {
        if !cpu_share.is_finite() || cpu_share <= 0.0 || memory_mib == 0 {
            return None;
        }
        Some(Self {
            family,
            cpu_milli: (cpu_share * 1000.0).round() as u32,
            memory_mib,
        })
    }

    /// The instance family.
    pub fn family(&self) -> InstanceFamily {
        self.family
    }

    /// The CPU share in vCPUs.
    pub fn cpu_share(&self) -> f64 {
        self.cpu_milli as f64 / 1000.0
    }

    /// The CPU share in milli-vCPUs (exact).
    pub fn cpu_milli(&self) -> u32 {
        self.cpu_milli
    }

    /// The memory limit in MiB.
    pub fn memory_mib(&self) -> u32 {
        self.memory_mib
    }

    /// Returns a copy with a different memory limit (`None` if zero).
    pub fn with_memory(&self, memory_mib: u32) -> Option<Self> {
        if memory_mib == 0 {
            return None;
        }
        Some(Self {
            memory_mib,
            ..*self
        })
    }

    /// Returns a copy on a different family.
    pub fn with_family(&self, family: InstanceFamily) -> Self {
        Self { family, ..*self }
    }
}

impl fmt::Display for ResourceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}vCPU/{}MiB",
            self.family,
            self.cpu_share(),
            self.memory_mib
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ResourceConfig::new(InstanceFamily::M5, -1.0, 128).is_none());
        assert!(ResourceConfig::new(InstanceFamily::M5, f64::NAN, 128).is_none());
        assert!(ResourceConfig::new(InstanceFamily::M5, 1.0, 0).is_none());
        assert!(ResourceConfig::new(InstanceFamily::M5, 0.25, 128).is_some());
    }

    #[test]
    fn share_round_trips_through_milli() {
        for &s in &[0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0] {
            let cfg = ResourceConfig::new(InstanceFamily::C6g, s, 256).unwrap();
            assert_eq!(cfg.cpu_share(), s);
        }
    }

    #[test]
    fn modifiers_preserve_other_fields() {
        let cfg = ResourceConfig::new(InstanceFamily::M5a, 1.5, 512).unwrap();
        let bigger = cfg.with_memory(1024).unwrap();
        assert_eq!(bigger.cpu_share(), 1.5);
        assert_eq!(bigger.family(), InstanceFamily::M5a);
        assert_eq!(bigger.memory_mib(), 1024);
        assert!(cfg.with_memory(0).is_none());
        let moved = cfg.with_family(InstanceFamily::C5);
        assert_eq!(moved.family(), InstanceFamily::C5);
        assert_eq!(moved.memory_mib(), 512);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let a = ResourceConfig::new(InstanceFamily::C5, 0.25, 128).unwrap();
        let b = ResourceConfig::new(InstanceFamily::C5, 0.25, 256).unwrap();
        assert!(a < b);
        let mut v = [b, a];
        v.sort();
        assert_eq!(v[0], a);
    }
}

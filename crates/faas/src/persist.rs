//! Ground-truth persistence.
//!
//! Collecting the §2 dataset is the expensive step of the study (5,000+
//! runs on real hardware). A downstream user wants to collect once and
//! reuse: this module round-trips a [`PerfTable`] through a plain CSV
//! format (`family,cpu_share,memory_mib,failed,exec_time_secs,
//! exec_cost_usd,peak_mem_mib,reps` with a two-line header carrying the
//! function and input id).

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::str::FromStr;

use freedom_cluster::InstanceFamily;
use freedom_workloads::{FunctionKind, InputId};

use crate::{FaasError, PerfPoint, PerfTable, ResourceConfig, Result};

/// Serializes a table to the CSV format.
pub fn table_to_csv(table: &PerfTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# function={} input={}", table.function, table.input);
    let _ = writeln!(
        out,
        "family,cpu_share,memory_mib,failed,exec_time_secs,exec_cost_usd,peak_mem_mib,reps"
    );
    for p in table.points() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            p.config.family(),
            p.config.cpu_share(),
            p.config.memory_mib(),
            p.failed,
            p.exec_time_secs,
            p.exec_cost_usd,
            p.peak_mem_mib.map(|v| v.to_string()).unwrap_or_default(),
            p.reps,
        );
    }
    out
}

/// Parses a table from the CSV format produced by [`table_to_csv`].
pub fn table_from_csv(content: &str) -> Result<PerfTable> {
    let mut lines = content.lines();
    let header = lines
        .next()
        .ok_or_else(|| FaasError::InvalidArgument("empty table file".into()))?;
    let (function, input) = parse_header(header)?;
    let columns = lines
        .next()
        .ok_or_else(|| FaasError::InvalidArgument("missing column header".into()))?;
    if !columns.starts_with("family,") {
        return Err(FaasError::InvalidArgument(format!(
            "unexpected column header: {columns}"
        )));
    }
    let mut points = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        points
            .push(parse_point(line).map_err(|msg| {
                FaasError::InvalidArgument(format!("line {}: {msg}", lineno + 3))
            })?);
    }
    Ok(PerfTable::from_points(function, input, points))
}

/// Writes a table to a file.
pub fn save_table(table: &PerfTable, path: &Path) -> Result<()> {
    fs::write(path, table_to_csv(table))
        .map_err(|e| FaasError::InvalidArgument(format!("cannot write {}: {e}", path.display())))
}

/// Reads a table from a file.
pub fn load_table(path: &Path) -> Result<PerfTable> {
    let content = fs::read_to_string(path)
        .map_err(|e| FaasError::InvalidArgument(format!("cannot read {}: {e}", path.display())))?;
    table_from_csv(&content)
}

fn parse_header(header: &str) -> Result<(FunctionKind, InputId)> {
    let rest = header
        .strip_prefix("# ")
        .ok_or_else(|| FaasError::InvalidArgument(format!("bad header: {header}")))?;
    let mut function = None;
    let mut input = None;
    for token in rest.split_whitespace() {
        if let Some(v) = token.strip_prefix("function=") {
            function = Some(FunctionKind::from_str(v).map_err(FaasError::InvalidArgument)?);
        } else if let Some(v) = token.strip_prefix("input=") {
            input = Some(InputId(v.to_string()));
        }
    }
    match (function, input) {
        (Some(f), Some(i)) => Ok((f, i)),
        _ => Err(FaasError::InvalidArgument(format!(
            "header missing function/input: {header}"
        ))),
    }
}

fn parse_point(line: &str) -> std::result::Result<PerfPoint, String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 8 {
        return Err(format!("expected 8 fields, found {}", fields.len()));
    }
    let family: InstanceFamily = fields[0].parse().map_err(|_| "bad family".to_string())?;
    let cpu_share: f64 = fields[1].parse().map_err(|_| "bad cpu_share".to_string())?;
    let memory_mib: u32 = fields[2].parse().map_err(|_| "bad memory".to_string())?;
    let config = ResourceConfig::new(family, cpu_share, memory_mib)
        .ok_or_else(|| "invalid configuration".to_string())?;
    let failed: bool = fields[3]
        .parse()
        .map_err(|_| "bad failed flag".to_string())?;
    let exec_time_secs: f64 = fields[4].parse().map_err(|_| "bad time".to_string())?;
    let exec_cost_usd: f64 = fields[5].parse().map_err(|_| "bad cost".to_string())?;
    let peak_mem_mib = if fields[6].is_empty() {
        None
    } else {
        Some(fields[6].parse().map_err(|_| "bad peak mem".to_string())?)
    };
    let reps: usize = fields[7].parse().map_err(|_| "bad reps".to_string())?;
    Ok(PerfPoint {
        config,
        failed,
        exec_time_secs,
        exec_cost_usd,
        peak_mem_mib,
        reps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_ground_truth;

    fn sample_table() -> PerfTable {
        let configs: Vec<ResourceConfig> = [128u32, 512, 2048]
            .into_iter()
            .flat_map(|mem| {
                [InstanceFamily::M5, InstanceFamily::C6g]
                    .into_iter()
                    .filter_map(move |fam| ResourceConfig::new(fam, 1.0, mem))
            })
            .collect();
        collect_ground_truth(
            FunctionKind::Ocr,
            &FunctionKind::Ocr.default_input(),
            &configs,
            3,
            99,
        )
        .unwrap()
    }

    #[test]
    fn csv_round_trips_exactly() {
        let table = sample_table();
        let csv = table_to_csv(&table);
        let back = table_from_csv(&csv).unwrap();
        assert_eq!(back.function, table.function);
        assert_eq!(back.input, table.input);
        assert_eq!(back.points(), table.points());
    }

    #[test]
    fn file_round_trip() {
        let table = sample_table();
        let path = std::env::temp_dir().join("freedom_persist_test.csv");
        save_table(&table, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.points(), table.points());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!(table_from_csv("").is_err());
        assert!(table_from_csv("# function=ocr input=x").is_err());
        assert!(table_from_csv("# nofunction\nfamily,...").is_err());
        let bad_row = "# function=ocr input=x\nfamily,cpu_share,memory_mib,failed,exec_time_secs,exec_cost_usd,peak_mem_mib,reps\nm5,1.0,512,false,1.0";
        let err = table_from_csv(bad_row).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        let bad_family = "# function=ocr input=x\nfamily,cpu_share,memory_mib,failed,exec_time_secs,exec_cost_usd,peak_mem_mib,reps\nz9,1.0,512,false,1.0,2e-5,,3";
        assert!(table_from_csv(bad_family).is_err());
    }

    #[test]
    fn missing_peak_mem_round_trips_as_none() {
        let csv = "# function=s3 input=video-3\nfamily,cpu_share,memory_mib,failed,exec_time_secs,exec_cost_usd,peak_mem_mib,reps\nm5,0.5,128,true,0.5,1e-6,,5\n";
        let table = table_from_csv(csv).unwrap();
        assert_eq!(table.points().len(), 1);
        assert_eq!(table.points()[0].peak_mem_mib, None);
        assert!(table.points()[0].failed);
    }

    #[test]
    fn loading_a_missing_file_fails_cleanly() {
        let err = load_table(Path::new("/nonexistent/freedom.csv")).unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }
}

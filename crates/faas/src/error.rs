//! Error type for the FaaS platform.

use std::fmt;

use freedom_cluster::ClusterError;
use freedom_pricing::PricingError;

/// Errors produced by gateway operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FaasError {
    /// The function name is not deployed.
    UnknownFunction(String),
    /// A function with this name is already deployed.
    AlreadyDeployed(String),
    /// The cluster could not place the sandbox.
    Placement(ClusterError),
    /// Cost metering failed.
    Pricing(PricingError),
    /// An invalid argument was supplied (empty name, bad timeout, …).
    InvalidArgument(String),
}

impl fmt::Display for FaasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            Self::AlreadyDeployed(name) => write!(f, "function already deployed: {name}"),
            Self::Placement(e) => write!(f, "placement failed: {e}"),
            Self::Pricing(e) => write!(f, "metering failed: {e}"),
            Self::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FaasError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Placement(e) => Some(e),
            Self::Pricing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for FaasError {
    fn from(e: ClusterError) -> Self {
        Self::Placement(e)
    }
}

impl From<PricingError> for FaasError {
    fn from(e: PricingError) -> Self {
        Self::Pricing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        use std::error::Error;
        let e: FaasError = ClusterError::UnknownId(3).into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("placement"));
        let p: FaasError = PricingError::InvalidParameter("x".into()).into();
        assert!(p.to_string().contains("metering"));
        assert!(FaasError::UnknownFunction("f".into()).source().is_none());
    }
}

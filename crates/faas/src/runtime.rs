//! The gateway: registry, deployment, invocation, metering.

use std::collections::BTreeMap;

use freedom_cluster::{Cluster, PlacementPolicy, SimClock};
use freedom_pricing::CostModel;
use freedom_workloads::{noise, ExecOutcome, FunctionKind, InputData, ResourceEnv};

use crate::{FaasError, InvocationRecord, InvocationStatus, ResourceConfig, Result};

/// The platform's function timeout (§3: "600s, comparable to the timeouts
/// in current serverless offerings").
pub const DEFAULT_TIMEOUT_SECS: f64 = 600.0;

/// A function to deploy: a name and which benchmark it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSpec {
    /// Deployment name (gateway-unique).
    pub name: String,
    /// Which benchmark function this is.
    pub kind: FunctionKind,
}

impl FunctionSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, kind: FunctionKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }
}

#[derive(Debug, Clone)]
struct Deployment {
    kind: FunctionKind,
    config: ResourceConfig,
}

/// The serverless gateway: deploy functions with a [`ResourceConfig`],
/// invoke them on the simulated cluster, and meter every run.
///
/// All randomness flows from the constructor seed, so a gateway replays
/// identically; distinct invocations still see fresh measurement noise.
#[derive(Debug, Clone)]
pub struct Gateway {
    cluster: Cluster,
    cost_model: CostModel,
    deployments: BTreeMap<String, Deployment>,
    clock: SimClock,
    timeout_secs: f64,
    noise_sigma: f64,
    seed: u64,
    invocation_seq: u64,
}

impl Gateway {
    /// Creates a gateway over an auto-provisioning cluster.
    pub fn new(seed: u64) -> Result<Self> {
        Ok(Self {
            cluster: Cluster::auto_provisioning(PlacementPolicy::BestFit),
            cost_model: CostModel::aws()?,
            deployments: BTreeMap::new(),
            clock: SimClock::new(),
            timeout_secs: DEFAULT_TIMEOUT_SECS,
            noise_sigma: noise::DEFAULT_SIGMA,
            seed,
            invocation_seq: 0,
        })
    }

    /// Overrides the invocation timeout.
    ///
    /// Returns [`FaasError::InvalidArgument`] for non-positive timeouts.
    pub fn set_timeout(&mut self, timeout_secs: f64) -> Result<()> {
        if !timeout_secs.is_finite() || timeout_secs <= 0.0 {
            return Err(FaasError::InvalidArgument(format!(
                "timeout must be positive, got {timeout_secs}"
            )));
        }
        self.timeout_secs = timeout_secs;
        Ok(())
    }

    /// Overrides the measurement-noise sigma (0 disables jitter).
    pub fn set_noise_sigma(&mut self, sigma: f64) {
        self.noise_sigma = sigma.clamp(0.0, 0.5);
    }

    /// The configured timeout.
    pub fn timeout_secs(&self) -> f64 {
        self.timeout_secs
    }

    /// Read access to the backing cluster (idle-capacity queries, §6.2).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The platform's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Deploys a function.
    ///
    /// Returns [`FaasError::AlreadyDeployed`] on name collision and
    /// [`FaasError::InvalidArgument`] for empty names.
    pub fn deploy(&mut self, spec: FunctionSpec, config: ResourceConfig) -> Result<()> {
        if spec.name.is_empty() {
            return Err(FaasError::InvalidArgument(
                "function name must not be empty".into(),
            ));
        }
        if self.deployments.contains_key(&spec.name) {
            return Err(FaasError::AlreadyDeployed(spec.name));
        }
        self.deployments.insert(
            spec.name,
            Deployment {
                kind: spec.kind,
                config,
            },
        );
        Ok(())
    }

    /// Changes the resource configuration of a deployed function — the
    /// operation an autotuner performs between trials.
    pub fn reconfigure(&mut self, name: &str, config: ResourceConfig) -> Result<()> {
        let dep = self
            .deployments
            .get_mut(name)
            .ok_or_else(|| FaasError::UnknownFunction(name.to_string()))?;
        dep.config = config;
        Ok(())
    }

    /// Returns the kind and current configuration of a deployment.
    pub fn deployment(&self, name: &str) -> Option<(FunctionKind, ResourceConfig)> {
        self.deployments.get(name).map(|d| (d.kind, d.config))
    }

    /// Names of all deployments, in name order.
    pub fn deployed_functions(&self) -> Vec<String> {
        self.deployments.keys().cloned().collect()
    }

    /// Invokes a deployed function on an input.
    ///
    /// The sandbox is placed on the cluster for the duration of the run
    /// (auto-provisioning a VM when needed), the workload model produces
    /// the outcome, the timeout is enforced, and the run is metered on its
    /// *allocated* share and memory — the paper's billing model.
    pub fn invoke(&mut self, name: &str, input: &InputData) -> Result<InvocationRecord> {
        let dep = self
            .deployments
            .get(name)
            .ok_or_else(|| FaasError::UnknownFunction(name.to_string()))?
            .clone();
        let config = dep.config;

        // Place the sandbox; auto-provisioning means this only fails for
        // requests larger than the biggest VM.
        let sandbox =
            self.cluster
                .place(config.family(), config.cpu_share(), config.memory_mib())?;

        let env = ResourceEnv::new(config.family(), config.cpu_share(), config.memory_mib())
            .expect("config validated at construction");
        // Derive a fresh, deterministic seed per invocation (splitmix-style).
        self.invocation_seq += 1;
        let exec_seed = self
            .seed
            .wrapping_add(self.invocation_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut noise_model = noise::NoiseModel::new(exec_seed, self.noise_sigma);
        let outcome = dep.kind.execute_with_noise(input, &env, &mut noise_model);

        let (status, duration, peak) = match outcome {
            ExecOutcome::Completed {
                duration_secs,
                peak_mem_mib,
            } if duration_secs <= self.timeout_secs => {
                (InvocationStatus::Success, duration_secs, Some(peak_mem_mib))
            }
            ExecOutcome::Completed { peak_mem_mib, .. } => {
                // Ran past the platform timeout: killed and billed for the
                // full timeout window.
                (
                    InvocationStatus::TimedOut,
                    self.timeout_secs,
                    Some(peak_mem_mib),
                )
            }
            ExecOutcome::OutOfMemory { elapsed_secs, .. } => {
                (InvocationStatus::OomKilled, elapsed_secs, None)
            }
        };

        let cost = self.cost_model.execution_cost(
            config.family(),
            config.cpu_share(),
            config.memory_mib(),
            duration,
        )?;

        self.clock.advance_secs(duration);
        self.cluster.release(sandbox)?;

        Ok(InvocationRecord {
            function: name.to_string(),
            config,
            input: input.id(),
            status,
            duration_secs: duration,
            cost_usd: cost,
            peak_mem_mib: peak,
            finished_at_secs: self.clock.now_secs(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom_cluster::InstanceFamily;
    use freedom_workloads::InputData;

    fn cfg(share: f64, mem: u32) -> ResourceConfig {
        ResourceConfig::new(InstanceFamily::M5, share, mem).unwrap()
    }

    fn gateway_with(name: &str, kind: FunctionKind, config: ResourceConfig) -> Gateway {
        let mut gw = Gateway::new(1).unwrap();
        gw.deploy(FunctionSpec::new(name, kind), config).unwrap();
        gw
    }

    #[test]
    fn deploy_invoke_release_cycle() {
        let mut gw = gateway_with("blur", FunctionKind::Faceblur, cfg(1.0, 256));
        let rec = gw
            .invoke("blur", &FunctionKind::Faceblur.default_input())
            .unwrap();
        assert!(rec.is_success());
        assert!(rec.duration_secs > 0.0);
        assert!(rec.cost_usd > 0.0);
        assert_eq!(rec.peak_mem_mib, Some(132)); // 80 + 40·1.3 MP
                                                 // The sandbox was released: the fleet is fully idle again.
        assert_eq!(gw.cluster().sandbox_count(), 0);
        assert_eq!(gw.cluster().cpu_utilization(), 0.0);
    }

    #[test]
    fn unknown_function_and_double_deploy() {
        let mut gw = gateway_with("f", FunctionKind::S3, cfg(0.5, 256));
        assert!(matches!(
            gw.invoke("nope", &FunctionKind::S3.default_input()),
            Err(FaasError::UnknownFunction(_))
        ));
        assert!(matches!(
            gw.deploy(FunctionSpec::new("f", FunctionKind::S3), cfg(0.5, 256)),
            Err(FaasError::AlreadyDeployed(_))
        ));
        assert!(matches!(
            gw.deploy(FunctionSpec::new("", FunctionKind::S3), cfg(0.5, 256)),
            Err(FaasError::InvalidArgument(_))
        ));
    }

    #[test]
    fn oom_is_recorded_and_billed_for_elapsed_time() {
        let mut gw = gateway_with("lin", FunctionKind::Linpack, cfg(1.0, 128));
        let rec = gw.invoke("lin", &InputData::Matrix { n: 7500 }).unwrap();
        assert_eq!(rec.status, InvocationStatus::OomKilled);
        assert!(rec.duration_secs > 0.0);
        assert!(rec.cost_usd > 0.0, "failed runs still burn money");
        assert_eq!(rec.peak_mem_mib, None);
    }

    #[test]
    fn timeout_caps_duration_and_billing() {
        let mut gw = gateway_with("t", FunctionKind::Transcode, cfg(0.25, 1024));
        gw.set_timeout(5.0).unwrap();
        let rec = gw
            .invoke("t", &FunctionKind::Transcode.default_input())
            .unwrap();
        assert_eq!(rec.status, InvocationStatus::TimedOut);
        assert_eq!(rec.duration_secs, 5.0);
        assert!(gw.set_timeout(0.0).is_err());
        assert!(gw.set_timeout(f64::INFINITY).is_err());
    }

    #[test]
    fn reconfigure_changes_behaviour() {
        let mut gw = gateway_with("t", FunctionKind::Transcode, cfg(0.5, 1024));
        gw.set_noise_sigma(0.0);
        let slow = gw
            .invoke("t", &FunctionKind::Transcode.default_input())
            .unwrap();
        gw.reconfigure("t", cfg(2.0, 1024)).unwrap();
        let fast = gw
            .invoke("t", &FunctionKind::Transcode.default_input())
            .unwrap();
        assert!(fast.duration_secs < slow.duration_secs / 2.0);
        assert!(gw.reconfigure("missing", cfg(1.0, 128)).is_err());
    }

    #[test]
    fn clock_advances_with_invocations() {
        let mut gw = gateway_with("s", FunctionKind::S3, cfg(1.0, 256));
        let a = gw.invoke("s", &FunctionKind::S3.default_input()).unwrap();
        let b = gw.invoke("s", &FunctionKind::S3.default_input()).unwrap();
        assert!(b.finished_at_secs > a.finished_at_secs);
    }

    #[test]
    fn noise_makes_repeat_invocations_differ_but_replays_identically() {
        let mut gw1 = gateway_with("s", FunctionKind::S3, cfg(1.0, 256));
        let r1a = gw1.invoke("s", &FunctionKind::S3.default_input()).unwrap();
        let r1b = gw1.invoke("s", &FunctionKind::S3.default_input()).unwrap();
        assert_ne!(r1a.duration_secs, r1b.duration_secs);

        let mut gw2 = gateway_with("s", FunctionKind::S3, cfg(1.0, 256));
        let r2a = gw2.invoke("s", &FunctionKind::S3.default_input()).unwrap();
        assert_eq!(r1a.duration_secs, r2a.duration_secs);
    }

    #[test]
    fn deployment_lookup() {
        let gw = gateway_with("x", FunctionKind::Ocr, cfg(1.0, 512));
        let (kind, config) = gw.deployment("x").unwrap();
        assert_eq!(kind, FunctionKind::Ocr);
        assert_eq!(config.memory_mib(), 512);
        assert!(gw.deployment("y").is_none());
        assert_eq!(gw.deployed_functions(), vec!["x".to_string()]);
    }
}

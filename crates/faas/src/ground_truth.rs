//! Exhaustive ground-truth sweeps (§2, §3).
//!
//! The paper's foundation is a dataset of every (function, configuration,
//! input) combination, each executed at least five times, with the median
//! taken as the configuration's execution time and cost. [`collect_ground_truth`]
//! reproduces that procedure on the simulated platform and [`PerfTable`]
//! answers the queries the rest of the study makes of the dataset (best
//! configuration, normalized spreads, per-family bests, …).

use freedom_linalg::stats;
use freedom_workloads::{FunctionKind, InputData, InputId};

use crate::{FunctionSpec, Gateway, ResourceConfig, Result};

/// Aggregated measurements of one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPoint {
    /// The configuration measured.
    pub config: ResourceConfig,
    /// Whether the function was OOM-killed under this configuration — the
    /// §5.1 failure mode that drives search-space slicing. Timeouts are
    /// *not* failures here: a timed-out run is a valid (terrible)
    /// measurement at the clamped timeout duration, and treating it as a
    /// memory failure would slice feasible configurations away. OOM is
    /// deterministic in the memory dimension, so one failing repetition
    /// marks the configuration failed.
    pub failed: bool,
    /// Median execution time over repetitions, seconds.
    pub exec_time_secs: f64,
    /// Median execution cost over repetitions, USD.
    pub exec_cost_usd: f64,
    /// Peak memory footprint in MiB (from successful repetitions) — what an
    /// Azure-style consumption-billed strategy would charge for.
    pub peak_mem_mib: Option<u32>,
    /// Number of repetitions aggregated.
    pub reps: usize,
}

/// The ground-truth table for one (function, input) pair.
#[derive(Debug, Clone)]
pub struct PerfTable {
    /// Function measured.
    pub function: FunctionKind,
    /// Input sample measured.
    pub input: InputId,
    points: Vec<PerfPoint>,
}

impl PerfTable {
    /// Builds a table from pre-aggregated points (used by tests and by
    /// table-backed evaluators).
    pub fn from_points(function: FunctionKind, input: InputId, points: Vec<PerfPoint>) -> Self {
        Self {
            function,
            input,
            points,
        }
    }

    /// All measured points.
    pub fn points(&self) -> &[PerfPoint] {
        &self.points
    }

    /// Points where the function completed successfully.
    pub fn feasible(&self) -> impl Iterator<Item = &PerfPoint> {
        self.points.iter().filter(|p| !p.failed)
    }

    /// Looks up a configuration.
    pub fn lookup(&self, config: &ResourceConfig) -> Option<&PerfPoint> {
        self.points.iter().find(|p| &p.config == config)
    }

    /// The feasible point with the lowest execution time.
    pub fn best_by_time(&self) -> Option<&PerfPoint> {
        self.feasible()
            .min_by(|a, b| a.exec_time_secs.total_cmp(&b.exec_time_secs))
    }

    /// The feasible point with the lowest execution cost.
    pub fn best_by_cost(&self) -> Option<&PerfPoint> {
        self.feasible()
            .min_by(|a, b| a.exec_cost_usd.total_cmp(&b.exec_cost_usd))
    }

    /// The feasible point minimizing an arbitrary objective.
    pub fn best_by<F: Fn(&PerfPoint) -> f64>(&self, objective: F) -> Option<&PerfPoint> {
        self.feasible()
            .min_by(|a, b| objective(a).total_cmp(&objective(b)))
    }

    /// Execution times of all feasible points, normalized to the best
    /// (minimum) one — the data behind Figure 1 (left).
    pub fn normalized_times(&self) -> Vec<f64> {
        Self::normalize(self.feasible().map(|p| p.exec_time_secs).collect())
    }

    /// Execution costs of all feasible points, normalized to the best
    /// (minimum) one — the data behind Figure 1 (right).
    pub fn normalized_costs(&self) -> Vec<f64> {
        Self::normalize(self.feasible().map(|p| p.exec_cost_usd).collect())
    }

    fn normalize(values: Vec<f64>) -> Vec<f64> {
        let best = values.iter().copied().fold(f64::INFINITY, f64::min);
        if !best.is_finite() || best <= 0.0 {
            return Vec::new();
        }
        values.into_iter().map(|v| v / best).collect()
    }
}

/// Runs the §2 sweep: every configuration in `configs`, `reps` times each,
/// aggregated by median.
///
/// `reps` is clamped to at least 1. A fresh gateway is built per sweep so
/// tables are independent and reproducible from `seed`.
pub fn collect_ground_truth(
    function: FunctionKind,
    input: &InputData,
    configs: &[ResourceConfig],
    reps: usize,
    seed: u64,
) -> Result<PerfTable> {
    let reps = reps.max(1);
    let mut gateway = Gateway::new(seed)?;
    gateway.deploy(
        FunctionSpec::new(function.name(), function),
        configs.first().copied().unwrap_or_else(|| {
            ResourceConfig::new(freedom_cluster::InstanceFamily::M5, 1.0, 1024)
                .expect("static config is valid")
        }),
    )?;

    let mut points = Vec::with_capacity(configs.len());
    for &config in configs {
        gateway.reconfigure(function.name(), config)?;
        let mut times = Vec::with_capacity(reps);
        let mut costs = Vec::with_capacity(reps);
        let mut failed = false;
        let mut peak_mem_mib = None;
        for _ in 0..reps {
            let record = gateway.invoke(function.name(), input)?;
            failed |= record.status == crate::InvocationStatus::OomKilled;
            peak_mem_mib = peak_mem_mib.max(record.peak_mem_mib);
            times.push(record.duration_secs);
            costs.push(record.cost_usd);
        }
        points.push(PerfPoint {
            config,
            failed,
            exec_time_secs: stats::median(&times).unwrap_or(f64::NAN),
            exec_cost_usd: stats::median(&costs).unwrap_or(f64::NAN),
            peak_mem_mib,
            reps,
        });
    }
    Ok(PerfTable::from_points(function, input.id(), points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom_cluster::InstanceFamily;

    fn small_space() -> Vec<ResourceConfig> {
        let mut out = Vec::new();
        for family in [InstanceFamily::M5, InstanceFamily::C6g] {
            for share in [0.5, 1.0, 2.0] {
                for mem in [128, 512, 1024] {
                    out.push(ResourceConfig::new(family, share, mem).unwrap());
                }
            }
        }
        out
    }

    #[test]
    fn sweep_covers_every_configuration() {
        let space = small_space();
        let table = collect_ground_truth(
            FunctionKind::Faceblur,
            &FunctionKind::Faceblur.default_input(),
            &space,
            5,
            42,
        )
        .unwrap();
        assert_eq!(table.points().len(), space.len());
        assert!(table.points().iter().all(|p| p.reps == 5));
        for config in &space {
            assert!(table.lookup(config).is_some());
        }
    }

    #[test]
    fn failures_are_recorded_for_small_memory() {
        let space = small_space();
        let table = collect_ground_truth(
            FunctionKind::Transcode,
            &FunctionKind::Transcode.default_input(),
            &space,
            3,
            7,
        )
        .unwrap();
        // transcode's default input needs ~234 MiB: all 128 MiB configs fail.
        for p in table.points() {
            assert_eq!(p.failed, p.config.memory_mib() == 128, "{}", p.config);
        }
        assert!(table.feasible().count() < table.points().len());
    }

    #[test]
    fn best_points_minimize_their_objective() {
        let table = collect_ground_truth(
            FunctionKind::Ocr,
            &FunctionKind::Ocr.default_input(),
            &small_space(),
            5,
            11,
        )
        .unwrap();
        let best_t = table.best_by_time().unwrap();
        let best_c = table.best_by_cost().unwrap();
        for p in table.feasible() {
            assert!(p.exec_time_secs >= best_t.exec_time_secs);
            assert!(p.exec_cost_usd >= best_c.exec_cost_usd);
        }
        // best_by with a time objective agrees with best_by_time.
        let via_generic = table.best_by(|p| p.exec_time_secs).unwrap();
        assert_eq!(via_generic.config, best_t.config);
    }

    #[test]
    fn normalized_metrics_start_at_one() {
        let table = collect_ground_truth(
            FunctionKind::S3,
            &FunctionKind::S3.default_input(),
            &small_space(),
            5,
            3,
        )
        .unwrap();
        let times = table.normalized_times();
        let costs = table.normalized_costs();
        assert!(!times.is_empty());
        let min_t = times.iter().copied().fold(f64::INFINITY, f64::min);
        let min_c = costs.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((min_t - 1.0).abs() < 1e-12);
        assert!((min_c - 1.0).abs() < 1e-12);
        assert!(times.iter().all(|&t| t >= 1.0));
    }

    #[test]
    fn sweeps_are_reproducible_per_seed() {
        let run = |seed| {
            collect_ground_truth(
                FunctionKind::Linpack,
                &FunctionKind::Linpack.default_input(),
                &small_space(),
                5,
                seed,
            )
            .unwrap()
        };
        let a = run(5);
        let b = run(5);
        let c = run(6);
        assert_eq!(a.points(), b.points());
        assert_ne!(a.points(), c.points());
    }

    #[test]
    fn reps_clamped_to_one() {
        let table = collect_ground_truth(
            FunctionKind::S3,
            &FunctionKind::S3.default_input(),
            &small_space()[..2],
            0,
            1,
        )
        .unwrap();
        assert!(table.points().iter().all(|p| p.reps == 1));
    }
}

//! OpenFaaS-style serverless platform over the simulated cluster.
//!
//! The paper deploys its benchmarks on OpenFaaS/k3s and drives them through
//! a gateway that enforces a per-invocation resource configuration and a
//! 600 s timeout (§3). This crate reproduces that control plane:
//!
//! - [`ResourceConfig`]: the decoupled (CPU share, memory limit, instance
//!   family) triple of Table 1;
//! - [`FunctionSpec`] and [`Gateway`]: function registry, deployment,
//!   invocation with placement on the [`freedom_cluster::Cluster`],
//!   timeout enforcement, and cost metering via [`freedom_pricing`];
//! - [`InvocationRecord`]: what the study measures for every run;
//! - [`ground_truth`]: the exhaustive §2 sweep over a configuration space,
//!   with ≥5 repetitions and median aggregation, producing a [`PerfTable`].
//!
//! # Examples
//!
//! ```
//! use freedom_cluster::InstanceFamily;
//! use freedom_faas::{FunctionSpec, Gateway, ResourceConfig};
//! use freedom_workloads::FunctionKind;
//!
//! let mut gw = Gateway::new(7).unwrap();
//! gw.deploy(
//!     FunctionSpec::new("blur", FunctionKind::Faceblur),
//!     ResourceConfig::new(InstanceFamily::C6g, 1.0, 256).unwrap(),
//! )
//! .unwrap();
//! let record = gw.invoke("blur", &FunctionKind::Faceblur.default_input()).unwrap();
//! assert!(record.is_success());
//! assert!(record.cost_usd > 0.0);
//! ```

mod config;
mod error;
pub mod ground_truth;
pub mod persist;
mod record;
mod runtime;

pub use config::ResourceConfig;
pub use error::FaasError;
pub use ground_truth::{collect_ground_truth, PerfPoint, PerfTable};
pub use persist::{load_table, save_table};
pub use record::{InvocationRecord, InvocationStatus};
pub use runtime::{FunctionSpec, Gateway, DEFAULT_TIMEOUT_SECS};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, FaasError>;

//! What the platform records about every invocation.

use std::fmt;

use freedom_workloads::InputId;

use crate::ResourceConfig;

/// Terminal status of an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvocationStatus {
    /// Completed within the timeout.
    Success,
    /// Killed by the memory cgroup (§5.1's failure mode).
    OomKilled,
    /// Exceeded the platform timeout (600 s by default, §3).
    TimedOut,
}

impl fmt::Display for InvocationStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Success => write!(f, "success"),
            Self::OomKilled => write!(f, "oom-killed"),
            Self::TimedOut => write!(f, "timed-out"),
        }
    }
}

/// One row of the measurement log: everything the study needs about a run.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationRecord {
    /// Deployed function name.
    pub function: String,
    /// Configuration the invocation ran under.
    pub config: ResourceConfig,
    /// Input sample id.
    pub input: InputId,
    /// Terminal status.
    pub status: InvocationStatus,
    /// Wall-clock duration in seconds (time burned, even on failure).
    pub duration_secs: f64,
    /// Metered cost in USD (billed on allocated resources × duration).
    pub cost_usd: f64,
    /// Peak memory footprint in MiB, when the run got far enough to
    /// measure one.
    pub peak_mem_mib: Option<u32>,
    /// Virtual timestamp (seconds since platform start) of completion.
    pub finished_at_secs: f64,
}

impl InvocationRecord {
    /// Whether the invocation completed successfully.
    pub fn is_success(&self) -> bool {
        self.status == InvocationStatus::Success
    }
}

impl fmt::Display for InvocationRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] on {}: {} in {:.3}s for ${:.6}",
            self.function, self.input, self.config, self.status, self.duration_secs, self.cost_usd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom_cluster::InstanceFamily;

    #[test]
    fn display_mentions_all_key_fields() {
        let r = InvocationRecord {
            function: "blur".into(),
            config: ResourceConfig::new(InstanceFamily::C5, 1.0, 256).unwrap(),
            input: InputId("image-1".into()),
            status: InvocationStatus::Success,
            duration_secs: 1.5,
            cost_usd: 2e-5,
            peak_mem_mib: Some(120),
            finished_at_secs: 10.0,
        };
        let s = r.to_string();
        assert!(s.contains("blur"));
        assert!(s.contains("image-1"));
        assert!(s.contains("c5"));
        assert!(s.contains("success"));
        assert!(r.is_success());
    }

    #[test]
    fn status_display() {
        assert_eq!(InvocationStatus::OomKilled.to_string(), "oom-killed");
        assert_eq!(InvocationStatus::TimedOut.to_string(), "timed-out");
    }
}

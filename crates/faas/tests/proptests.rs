//! Property-based tests for the platform invariants.

use freedom_cluster::InstanceFamily;
use freedom_faas::{FunctionSpec, Gateway, InvocationStatus, ResourceConfig};
use freedom_pricing::CostModel;
use freedom_workloads::FunctionKind;
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = FunctionKind> {
    prop::sample::select(FunctionKind::ALL.to_vec())
}

fn any_family() -> impl Strategy<Value = InstanceFamily> {
    prop::sample::select(InstanceFamily::SEARCH_SPACE.to_vec())
}

fn any_mem() -> impl Strategy<Value = u32> {
    prop::sample::select(vec![128u32, 256, 512, 768, 1024, 2048])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metering_always_matches_the_cost_model(
        kind in any_kind(),
        family in any_family(),
        share_milli in 250u32..2000,
        mem in any_mem(),
        seed in 0u64..500,
    ) {
        let config = ResourceConfig::new(family, share_milli as f64 / 1000.0, mem).unwrap();
        let mut gw = Gateway::new(seed).unwrap();
        gw.deploy(FunctionSpec::new("f", kind), config).unwrap();
        let record = gw.invoke("f", &kind.default_input()).unwrap();
        // The bill is exactly allocated-resources × duration, whatever the
        // outcome was.
        let expected = CostModel::aws()
            .unwrap()
            .execution_cost(family, config.cpu_share(), mem, record.duration_secs)
            .unwrap();
        prop_assert!((record.cost_usd - expected).abs() < 1e-15);
        // Durations never exceed the platform timeout.
        prop_assert!(record.duration_secs <= gw.timeout_secs() + 1e-12);
        // Success implies the footprint fit the limit.
        if let Some(peak) = record.peak_mem_mib {
            prop_assert!(peak <= mem);
        }
        // The sandbox is always released, success or not.
        prop_assert_eq!(gw.cluster().sandbox_count(), 0);
        prop_assert_eq!(gw.cluster().cpu_utilization(), 0.0);
    }

    #[test]
    fn oom_verdict_is_exactly_the_demand_threshold(
        kind in any_kind(),
        family in any_family(),
        mem in any_mem(),
        seed in 0u64..200,
    ) {
        let config = ResourceConfig::new(family, 1.0, mem).unwrap();
        let mut gw = Gateway::new(seed).unwrap();
        gw.deploy(FunctionSpec::new("f", kind), config).unwrap();
        let input = kind.default_input();
        let required = kind.demand(&input).required_mem_mib;
        let record = gw.invoke("f", &input).unwrap();
        if required <= mem {
            prop_assert_ne!(record.status, InvocationStatus::OomKilled);
        } else {
            prop_assert_eq!(record.status, InvocationStatus::OomKilled);
        }
    }

    #[test]
    fn repeated_invocations_are_independent_and_positive(
        kind in any_kind(),
        seed in 0u64..100,
        n in 2usize..8,
    ) {
        let config = ResourceConfig::new(InstanceFamily::M5, 1.0, 2048).unwrap();
        let mut gw = Gateway::new(seed).unwrap();
        gw.deploy(FunctionSpec::new("f", kind), config).unwrap();
        let input = kind.default_input();
        let mut last_finish = 0.0;
        for _ in 0..n {
            let record = gw.invoke("f", &input).unwrap();
            prop_assert!(record.duration_secs > 0.0);
            prop_assert!(record.finished_at_secs > last_finish);
            last_finish = record.finished_at_secs;
        }
    }
}

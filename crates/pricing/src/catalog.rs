//! Published on-demand instance prices.
//!
//! Hourly `.large` prices for the nine modelled families, as published for
//! us-east-1 at the time of the paper's study (mid-2021). The `r` families
//! are never scheduled on; §3.2 uses their prices only to close the linear
//! systems.

use freedom_cluster::InstanceFamily;

/// Published hourly on-demand price (USD) of the family's `.large` size.
///
/// # Examples
///
/// ```
/// use freedom_pricing::catalog::hourly_price_large;
/// use freedom_cluster::InstanceFamily;
///
/// assert_eq!(hourly_price_large(InstanceFamily::M5), 0.096);
/// assert_eq!(hourly_price_large(InstanceFamily::C6g), 0.068);
/// ```
pub fn hourly_price_large(family: InstanceFamily) -> f64 {
    match family {
        InstanceFamily::C5 => 0.085,
        InstanceFamily::M5 => 0.096,
        InstanceFamily::R5 => 0.126,
        InstanceFamily::C5a => 0.077,
        InstanceFamily::M5a => 0.086,
        InstanceFamily::R5a => 0.113,
        InstanceFamily::C6g => 0.068,
        InstanceFamily::M6g => 0.077,
        InstanceFamily::R6g => 0.1008,
    }
}

/// `(α, β)` of Eq. 1 for the family's `.large` size: vCPU count and memory
/// in GB.
pub fn eq1_coefficients(family: InstanceFamily) -> (f64, f64) {
    use freedom_cluster::{InstanceSize, InstanceType};
    let it = InstanceType::new(family, InstanceSize::Large);
    (it.vcpus() as f64, it.memory_mib() as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freedom_cluster::InstanceClass;

    #[test]
    fn all_prices_positive() {
        for fam in InstanceFamily::ALL {
            assert!(hourly_price_large(fam) > 0.0, "{fam}");
        }
    }

    #[test]
    fn compute_optimized_is_cheapest_within_architecture() {
        // Less memory per vCPU ⇒ lower absolute price, for every arch.
        for (c, m, r) in [
            (InstanceFamily::C5, InstanceFamily::M5, InstanceFamily::R5),
            (
                InstanceFamily::C5a,
                InstanceFamily::M5a,
                InstanceFamily::R5a,
            ),
            (
                InstanceFamily::C6g,
                InstanceFamily::M6g,
                InstanceFamily::R6g,
            ),
        ] {
            assert!(hourly_price_large(c) < hourly_price_large(m));
            assert!(hourly_price_large(m) < hourly_price_large(r));
        }
    }

    #[test]
    fn graviton_is_cheapest_architecture() {
        assert!(hourly_price_large(InstanceFamily::M6g) < hourly_price_large(InstanceFamily::M5a));
        assert!(hourly_price_large(InstanceFamily::M5a) < hourly_price_large(InstanceFamily::M5));
    }

    #[test]
    fn eq1_coefficients_follow_class() {
        assert_eq!(eq1_coefficients(InstanceFamily::C5), (2.0, 4.0));
        assert_eq!(eq1_coefficients(InstanceFamily::M5), (2.0, 8.0));
        assert_eq!(eq1_coefficients(InstanceFamily::R5), (2.0, 16.0));
        for fam in InstanceFamily::ALL {
            let (alpha, beta) = eq1_coefficients(fam);
            assert_eq!(alpha, 2.0);
            assert_eq!(beta, 2.0 * fam.class().memory_per_vcpu_gib());
            let _ = InstanceClass::GeneralPurpose; // class linkage exercised above
        }
    }
}

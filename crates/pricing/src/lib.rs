//! Instance pricing and the paper's execution-cost model (§3.2).
//!
//! AWS never publishes per-vCPU or per-GB prices, so the paper derives them:
//! for each CPU architecture it writes one equation per instance family
//! (Eq. 1, `α·X_vCPU + β·Y_mem = P_instance`), assumes families of the same
//! architecture share the per-GB price `Y` and that `m`/`r` families share a
//! CPU type (hence a per-vCPU price), and solves the resulting 3×3 linear
//! system. This crate reproduces that derivation from the same published
//! on-demand prices and exposes:
//!
//! - [`catalog`]: the published hourly prices,
//! - [`UnitPrices`] / [`derive_unit_prices`]: the Eq.-1 solution,
//! - [`CostModel`]: execution cost of a (CPU share, memory, family, duration)
//!   tuple, with optional spot discounting for idle capacity (§6.2).
//!
//! # Examples
//!
//! ```
//! use freedom_pricing::CostModel;
//! use freedom_cluster::InstanceFamily;
//!
//! let model = CostModel::aws().unwrap();
//! // 1 vCPU + 1 GiB for one hour on m5 costs X_m5 + Y_intel.
//! let usd = model.execution_cost(InstanceFamily::M5, 1.0, 1024, 3600.0).unwrap();
//! assert!((usd - (0.033 + 0.00375)).abs() < 1e-9);
//! ```

pub mod catalog;
mod cost;
mod error;
mod unit_prices;

pub use cost::{CostModel, SpotPricing};
pub use error::PricingError;
pub use unit_prices::{derive_unit_prices, UnitPrices};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, PricingError>;

//! Per-vCPU and per-GB price derivation (Eq. 1).
//!
//! For each architecture the published prices of the `c`, `m`, and `r`
//! families form the system
//!
//! ```text
//! α_c·X_c + β_c·Y = P_c        (c family has its own CPU type)
//! α_m·X_m + β_m·Y = P_m        (m and r share a CPU type ⇒ same X_m)
//! α_r·X_m + β_r·Y = P_r
//! ```
//!
//! with per-GB price `Y` shared across the architecture, exactly as §3.2
//! assumes. The 3×3 system is solved with LU factorization.

use freedom_cluster::{Architecture, InstanceClass, InstanceFamily};
use freedom_linalg::{lu_solve, Matrix};

use crate::catalog::{eq1_coefficients, hourly_price_large};
use crate::{PricingError, Result};

/// Derived hourly unit prices for one CPU architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitPrices {
    /// Architecture these prices belong to.
    pub architecture: Architecture,
    /// Per-vCPU-hour price on compute-optimized (`c`) families, USD.
    pub per_vcpu_hour_compute: f64,
    /// Per-vCPU-hour price on general/memory (`m`/`r`) families, USD.
    pub per_vcpu_hour_general: f64,
    /// Per-GB-hour memory price, USD, shared across the architecture.
    pub per_gb_hour: f64,
}

impl UnitPrices {
    /// Per-vCPU-hour price for a given family of this architecture.
    pub fn per_vcpu_hour(&self, family: InstanceFamily) -> f64 {
        match family.class() {
            InstanceClass::ComputeOptimized => self.per_vcpu_hour_compute,
            InstanceClass::GeneralPurpose | InstanceClass::MemoryOptimized => {
                self.per_vcpu_hour_general
            }
        }
    }
}

/// Solves the Eq.-1 system for one architecture.
///
/// # Examples
///
/// ```
/// use freedom_pricing::derive_unit_prices;
/// use freedom_cluster::Architecture;
///
/// let intel = derive_unit_prices(Architecture::IntelX86).unwrap();
/// assert!((intel.per_gb_hour - 0.00375).abs() < 1e-12);
/// assert!((intel.per_vcpu_hour_general - 0.033).abs() < 1e-12);
/// assert!((intel.per_vcpu_hour_compute - 0.035).abs() < 1e-12);
/// ```
pub fn derive_unit_prices(architecture: Architecture) -> Result<UnitPrices> {
    let (c, m, r) = families_of(architecture);
    let (alpha_c, beta_c) = eq1_coefficients(c);
    let (alpha_m, beta_m) = eq1_coefficients(m);
    let (alpha_r, beta_r) = eq1_coefficients(r);
    // Unknowns ordered [X_c, X_m, Y].
    let a = Matrix::from_rows(&[
        &[alpha_c, 0.0, beta_c],
        &[0.0, alpha_m, beta_m],
        &[0.0, alpha_r, beta_r],
    ])?;
    let b = [
        hourly_price_large(c),
        hourly_price_large(m),
        hourly_price_large(r),
    ];
    let x = lu_solve(&a, &b)?;
    let prices = UnitPrices {
        architecture,
        per_vcpu_hour_compute: x[0],
        per_vcpu_hour_general: x[1],
        per_gb_hour: x[2],
    };
    for (which, value) in [
        ("per-vCPU (compute)", prices.per_vcpu_hour_compute),
        ("per-vCPU (general)", prices.per_vcpu_hour_general),
        ("per-GB", prices.per_gb_hour),
    ] {
        if value <= 0.0 {
            return Err(PricingError::NonPositiveUnitPrice { which, value });
        }
    }
    Ok(prices)
}

fn families_of(arch: Architecture) -> (InstanceFamily, InstanceFamily, InstanceFamily) {
    match arch {
        Architecture::IntelX86 => (InstanceFamily::C5, InstanceFamily::M5, InstanceFamily::R5),
        Architecture::Amd => (
            InstanceFamily::C5a,
            InstanceFamily::M5a,
            InstanceFamily::R5a,
        ),
        Architecture::Graviton2 => (
            InstanceFamily::C6g,
            InstanceFamily::M6g,
            InstanceFamily::R6g,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_matches_hand_solution() {
        let p = derive_unit_prices(Architecture::IntelX86).unwrap();
        assert!((p.per_gb_hour - 0.00375).abs() < 1e-12);
        assert!((p.per_vcpu_hour_general - 0.033).abs() < 1e-12);
        assert!((p.per_vcpu_hour_compute - 0.035).abs() < 1e-12);
    }

    #[test]
    fn amd_matches_hand_solution() {
        let p = derive_unit_prices(Architecture::Amd).unwrap();
        assert!((p.per_gb_hour - 0.003375).abs() < 1e-12);
        assert!((p.per_vcpu_hour_general - 0.0295).abs() < 1e-12);
        assert!((p.per_vcpu_hour_compute - 0.03175).abs() < 1e-12);
    }

    #[test]
    fn graviton_matches_hand_solution() {
        let p = derive_unit_prices(Architecture::Graviton2).unwrap();
        assert!((p.per_gb_hour - 0.002975).abs() < 1e-12);
        assert!((p.per_vcpu_hour_general - 0.0266).abs() < 1e-12);
        assert!((p.per_vcpu_hour_compute - 0.02805).abs() < 1e-12);
    }

    #[test]
    fn solution_reconstructs_published_prices() {
        for arch in Architecture::ALL {
            let p = derive_unit_prices(arch).unwrap();
            let (c, m, r) = families_of(arch);
            for fam in [c, m, r] {
                let (alpha, beta) = eq1_coefficients(fam);
                let rebuilt = alpha * p.per_vcpu_hour(fam) + beta * p.per_gb_hour;
                assert!(
                    (rebuilt - hourly_price_large(fam)).abs() < 1e-12,
                    "{fam}: {rebuilt}"
                );
            }
        }
    }

    #[test]
    fn graviton_units_are_cheapest() {
        let intel = derive_unit_prices(Architecture::IntelX86).unwrap();
        let arm = derive_unit_prices(Architecture::Graviton2).unwrap();
        assert!(arm.per_vcpu_hour_general < intel.per_vcpu_hour_general);
        assert!(arm.per_gb_hour < intel.per_gb_hour);
    }

    #[test]
    fn per_vcpu_hour_dispatches_on_class() {
        let p = derive_unit_prices(Architecture::IntelX86).unwrap();
        assert_eq!(p.per_vcpu_hour(InstanceFamily::C5), p.per_vcpu_hour_compute);
        assert_eq!(p.per_vcpu_hour(InstanceFamily::M5), p.per_vcpu_hour_general);
        assert_eq!(p.per_vcpu_hour(InstanceFamily::R5), p.per_vcpu_hour_general);
    }
}

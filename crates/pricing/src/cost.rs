//! Execution cost of a resource configuration.

use std::collections::BTreeMap;

use freedom_cluster::{Architecture, InstanceFamily};

use crate::{derive_unit_prices, PricingError, Result, UnitPrices};

/// Spot-style discount applied to idle capacity (§6.2).
///
/// The paper assumes idle instance types are offered at a fraction of the
/// normal per-vCPU and per-GB prices (20% in Figure 15, i.e. an 80%
/// discount).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotPricing {
    /// Remaining fraction of the on-demand price, in `(0, 1]`.
    pub fraction: f64,
}

impl SpotPricing {
    /// The paper's Figure 15 setting: idle capacity at 20% of list price.
    pub const PAPER_DEFAULT: SpotPricing = SpotPricing { fraction: 0.2 };

    /// Creates a spot pricing policy; `fraction` must be in `(0, 1]`.
    pub fn new(fraction: f64) -> Result<Self> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(PricingError::InvalidParameter(format!(
                "spot fraction must be in (0, 1], got {fraction}"
            )));
        }
        Ok(Self { fraction })
    }

    /// Demand-dependent price fraction of a shared spot market.
    ///
    /// The flat `fraction` models an empty market; as utilization of the
    /// shared idle pool rises the discount shrinks linearly, reaching full
    /// list price when the market is saturated:
    /// `fraction + (1 − fraction) · utilization`. Utilization outside
    /// `[0, 1]` is clamped, so the result always lies in `[fraction, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use freedom_pricing::SpotPricing;
    ///
    /// let spot = SpotPricing::PAPER_DEFAULT;
    /// assert_eq!(spot.demand_fraction(0.0), 0.2);
    /// assert_eq!(spot.demand_fraction(1.0), 1.0);
    /// assert!((spot.demand_fraction(0.5) - 0.6).abs() < 1e-12);
    /// ```
    pub fn demand_fraction(&self, utilization: f64) -> f64 {
        let u = if utilization.is_finite() {
            utilization.clamp(0.0, 1.0)
        } else {
            1.0
        };
        self.fraction + (1.0 - self.fraction) * u
    }
}

/// The paper's execution-cost model: derived unit prices per architecture,
/// applied to (CPU share, memory, duration) tuples.
#[derive(Debug, Clone)]
pub struct CostModel {
    per_arch: BTreeMap<Architecture, UnitPrices>,
}

impl CostModel {
    /// Builds the model from the published AWS catalog.
    pub fn aws() -> Result<Self> {
        let mut per_arch = BTreeMap::new();
        for arch in Architecture::ALL {
            per_arch.insert(arch, derive_unit_prices(arch)?);
        }
        Ok(Self { per_arch })
    }

    /// Unit prices for an architecture.
    ///
    /// # Panics
    ///
    /// Never panics: all three architectures are populated by [`Self::aws`].
    pub fn unit_prices(&self, arch: Architecture) -> &UnitPrices {
        self.per_arch
            .get(&arch)
            .expect("all architectures populated at construction")
    }

    /// USD cost of holding `cpu_share` vCPUs and `memory_mib` MiB for
    /// `duration_secs` on `family`.
    ///
    /// Returns [`PricingError::InvalidParameter`] for non-positive share,
    /// zero memory, or negative/non-finite duration.
    ///
    /// # Examples
    ///
    /// ```
    /// use freedom_pricing::CostModel;
    /// use freedom_cluster::InstanceFamily;
    ///
    /// let m = CostModel::aws().unwrap();
    /// let one_hour = m.execution_cost(InstanceFamily::C6g, 2.0, 4096, 3600.0).unwrap();
    /// // Two Graviton compute vCPUs + 4 GiB for an hour.
    /// assert!((one_hour - (2.0 * 0.02805 + 4.0 * 0.002975)).abs() < 1e-9);
    /// ```
    pub fn execution_cost(
        &self,
        family: InstanceFamily,
        cpu_share: f64,
        memory_mib: u32,
        duration_secs: f64,
    ) -> Result<f64> {
        self.execution_cost_discounted(
            family,
            cpu_share,
            memory_mib,
            duration_secs,
            SpotPricing { fraction: 1.0 },
        )
    }

    /// Like [`Self::execution_cost`] but at a spot-discounted price.
    pub fn execution_cost_discounted(
        &self,
        family: InstanceFamily,
        cpu_share: f64,
        memory_mib: u32,
        duration_secs: f64,
        spot: SpotPricing,
    ) -> Result<f64> {
        if !cpu_share.is_finite() || cpu_share <= 0.0 {
            return Err(PricingError::InvalidParameter(format!(
                "cpu share must be positive, got {cpu_share}"
            )));
        }
        if memory_mib == 0 {
            return Err(PricingError::InvalidParameter(
                "memory must be non-zero".into(),
            ));
        }
        if !duration_secs.is_finite() || duration_secs < 0.0 {
            return Err(PricingError::InvalidParameter(format!(
                "duration must be non-negative, got {duration_secs}"
            )));
        }
        let prices = self.unit_prices(family.architecture());
        let hourly = cpu_share * prices.per_vcpu_hour(family)
            + (memory_mib as f64 / 1024.0) * prices.per_gb_hour;
        Ok(hourly * spot.fraction * duration_secs / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_linearly_in_duration_and_share() {
        let m = CostModel::aws().unwrap();
        let base = m
            .execution_cost(InstanceFamily::M5, 1.0, 1024, 10.0)
            .unwrap();
        let double_time = m
            .execution_cost(InstanceFamily::M5, 1.0, 1024, 20.0)
            .unwrap();
        assert!((double_time - 2.0 * base).abs() < 1e-15);
        let cpu_only_delta = m
            .execution_cost(InstanceFamily::M5, 2.0, 1024, 10.0)
            .unwrap()
            - base;
        // Doubling the share adds exactly one vCPU-10s of cost.
        assert!((cpu_only_delta - 0.033 * 10.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn demand_fraction_interpolates_to_list_price() {
        let spot = SpotPricing { fraction: 0.2 };
        assert_eq!(spot.demand_fraction(0.0), 0.2);
        assert_eq!(spot.demand_fraction(1.0), 1.0);
        assert!((spot.demand_fraction(0.25) - 0.4).abs() < 1e-15);
        // Monotone in utilization, clamped outside [0, 1].
        let mut prev = 0.0;
        for i in 0..=10 {
            let f = spot.demand_fraction(i as f64 / 10.0);
            assert!(f >= prev && (0.2..=1.0).contains(&f));
            prev = f;
        }
        assert_eq!(spot.demand_fraction(-3.0), 0.2);
        assert_eq!(spot.demand_fraction(7.0), 1.0);
        assert_eq!(spot.demand_fraction(f64::NAN), 1.0);
    }

    #[test]
    fn graviton_is_cheaper_than_intel_for_same_allocation() {
        let m = CostModel::aws().unwrap();
        let intel = m
            .execution_cost(InstanceFamily::M5, 1.0, 2048, 60.0)
            .unwrap();
        let arm = m
            .execution_cost(InstanceFamily::M6g, 1.0, 2048, 60.0)
            .unwrap();
        assert!(arm < intel);
    }

    #[test]
    fn spot_discount_scales_cost() {
        let m = CostModel::aws().unwrap();
        let full = m
            .execution_cost(InstanceFamily::C5, 1.0, 512, 30.0)
            .unwrap();
        let spot = m
            .execution_cost_discounted(
                InstanceFamily::C5,
                1.0,
                512,
                30.0,
                SpotPricing::PAPER_DEFAULT,
            )
            .unwrap();
        assert!((spot - 0.2 * full).abs() < 1e-15);
    }

    #[test]
    fn spot_fraction_validation() {
        assert!(SpotPricing::new(0.0).is_err());
        assert!(SpotPricing::new(1.5).is_err());
        assert!(SpotPricing::new(-0.1).is_err());
        assert!(SpotPricing::new(1.0).is_ok());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let m = CostModel::aws().unwrap();
        assert!(m.execution_cost(InstanceFamily::M5, 0.0, 128, 1.0).is_err());
        assert!(m.execution_cost(InstanceFamily::M5, 1.0, 0, 1.0).is_err());
        assert!(m
            .execution_cost(InstanceFamily::M5, 1.0, 128, -1.0)
            .is_err());
        assert!(m
            .execution_cost(InstanceFamily::M5, 1.0, 128, f64::NAN)
            .is_err());
    }

    #[test]
    fn zero_duration_costs_nothing() {
        let m = CostModel::aws().unwrap();
        assert_eq!(
            m.execution_cost(InstanceFamily::M5, 1.0, 128, 0.0).unwrap(),
            0.0
        );
    }
}

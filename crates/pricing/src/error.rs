//! Error type for the pricing crate.

use std::fmt;

use freedom_linalg::LinalgError;

/// Errors produced by price derivation and cost computation.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingError {
    /// The Eq.-1 linear system could not be solved (degenerate catalog).
    UnsolvableSystem(LinalgError),
    /// A derived unit price came out non-positive, which would make the
    /// cost model meaningless.
    NonPositiveUnitPrice {
        /// Which price was non-positive, e.g. `"per-vCPU (compute)"`.
        which: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A cost query carried an invalid parameter.
    InvalidParameter(String),
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsolvableSystem(e) => write!(f, "cannot solve pricing system: {e}"),
            Self::NonPositiveUnitPrice { which, value } => {
                write!(f, "derived {which} price is non-positive: {value}")
            }
            Self::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for PricingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::UnsolvableSystem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for PricingError {
    fn from(e: LinalgError) -> Self {
        Self::UnsolvableSystem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PricingError::from(LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        let p = PricingError::InvalidParameter("bad".into());
        assert!(p.source().is_none());
    }
}

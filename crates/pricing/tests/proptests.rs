//! Property-based tests for the cost model.

use freedom_cluster::InstanceFamily;
use freedom_pricing::{CostModel, SpotPricing};
use proptest::prelude::*;

fn any_family() -> impl Strategy<Value = InstanceFamily> {
    prop::sample::select(InstanceFamily::SEARCH_SPACE.to_vec())
}

proptest! {
    #[test]
    fn cost_is_positive_and_monotone_in_every_dimension(
        family in any_family(),
        share_milli in 250u32..2000,
        mem in 128u32..2048,
        secs in 1.0f64..600.0,
    ) {
        let model = CostModel::aws().unwrap();
        let share = share_milli as f64 / 1000.0;
        let cost = model.execution_cost(family, share, mem, secs).unwrap();
        prop_assert!(cost > 0.0);
        // More CPU, memory, or time each strictly increase cost.
        let more_cpu = model.execution_cost(family, share + 0.25, mem, secs).unwrap();
        let more_mem = model.execution_cost(family, share, mem + 512, secs).unwrap();
        let more_time = model.execution_cost(family, share, mem, secs + 10.0).unwrap();
        prop_assert!(more_cpu > cost);
        prop_assert!(more_mem > cost);
        prop_assert!(more_time > cost);
    }

    #[test]
    fn spot_discount_is_exactly_linear(
        family in any_family(),
        frac_pct in 1u32..=100,
    ) {
        let model = CostModel::aws().unwrap();
        let spot = SpotPricing::new(frac_pct as f64 / 100.0).unwrap();
        let full = model.execution_cost(family, 1.0, 1024, 60.0).unwrap();
        let discounted = model
            .execution_cost_discounted(family, 1.0, 1024, 60.0, spot)
            .unwrap();
        prop_assert!((discounted - full * spot.fraction).abs() < 1e-12);
    }

    #[test]
    fn same_allocation_is_cheapest_on_graviton(
        share_milli in 250u32..2000,
        mem in 128u32..2048,
    ) {
        let model = CostModel::aws().unwrap();
        let share = share_milli as f64 / 1000.0;
        let arm = model.execution_cost(InstanceFamily::M6g, share, mem, 60.0).unwrap();
        let amd = model.execution_cost(InstanceFamily::M5a, share, mem, 60.0).unwrap();
        let intel = model.execution_cost(InstanceFamily::M5, share, mem, 60.0).unwrap();
        prop_assert!(arm < amd);
        prop_assert!(amd < intel);
    }
}

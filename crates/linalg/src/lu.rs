//! LU factorization with partial pivoting.
//!
//! Used by the pricing substrate to solve the §3.2 systems of instance-price
//! equations (Eq. 1), and available as a general small-system solver.

use crate::{LinalgError, Matrix, Result};

/// LU factors of a square matrix, with the row-permutation applied.
///
/// # Examples
///
/// ```
/// use freedom_linalg::{Matrix, LuFactors};
///
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]).unwrap();
/// let lu = LuFactors::factorize(&a).unwrap();
/// let x = lu.solve(&[10.0, 12.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: row `i` of the factorization is row `perm[i]` of the
    /// original matrix.
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factorizes a square matrix with partial pivoting.
    ///
    /// Returns [`LinalgError::Singular`] for (numerically) singular inputs
    /// and [`LinalgError::DimensionMismatch`] for non-square inputs.
    pub fn factorize(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if n != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivoting: bring the largest-magnitude entry to the
            // diagonal to keep the elimination numerically stable.
            let pivot_row = (col..n)
                .max_by(|&i, &j| {
                    lu.get(i, col)
                        .abs()
                        .partial_cmp(&lu.get(j, col).abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty range");
            let pivot = lu.get(pivot_row, col);
            if pivot.abs() < 1e-12 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = lu.get(col, c);
                    lu.set(col, c, lu.get(pivot_row, c));
                    lu.set(pivot_row, c, tmp);
                }
                perm.swap(col, pivot_row);
            }
            for row in (col + 1)..n {
                let factor = lu.get(row, col) / lu.get(col, col);
                lu.set(row, col, factor);
                for c in (col + 1)..n {
                    let v = lu.get(row, c) - factor * lu.get(col, c);
                    lu.set(row, c, v);
                }
            }
        }
        Ok(Self { lu, perm })
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        // Forward substitution with the permuted right-hand side (L has an
        // implicit unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for (j, &yj) in y[..i].iter().enumerate() {
                sum -= self.lu.get(i, j) * yj;
            }
            y[i] = sum;
        }
        // Back substitution through U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.lu.get(i, j) * xj;
            }
            x[i] = sum / self.lu.get(i, i);
        }
        Ok(x)
    }
}

/// One-shot convenience: factorize `a` and solve `a x = b`.
///
/// # Examples
///
/// ```
/// use freedom_linalg::{Matrix, lu_solve};
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
/// assert_eq!(lu_solve(&a, &[2.0, 8.0]).unwrap(), vec![1.0, 2.0]);
/// ```
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuFactors::factorize(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_3x3_system() {
        // The paper's Intel pricing system shape: alpha*X + beta*Y = P.
        let a =
            Matrix::from_rows(&[&[2.0, 0.0, 4.0], &[0.0, 2.0, 8.0], &[0.0, 2.0, 16.0]]).unwrap();
        let b = [0.085, 0.096, 0.126];
        let x = lu_solve(&a, &b).unwrap();
        // Hand-solved: Y = 0.00375, X2 = 0.033, X1 = 0.035.
        assert!((x[0] - 0.035).abs() < 1e-12);
        assert!((x[1] - 0.033).abs() < 1e-12);
        assert!((x[2] - 0.00375).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(
            lu_solve(&a, &[1.0, 2.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuFactors::factorize(&a).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let a = Matrix::identity(2);
        let lu = LuFactors::factorize(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_like_system() {
        let a = Matrix::from_rows(&[
            &[3.0, -1.0, 2.0, 0.5],
            &[1.0, 4.0, -2.0, 1.0],
            &[-2.0, 1.5, 5.0, -1.0],
            &[0.5, -1.0, 1.0, 6.0],
        ])
        .unwrap();
        let b = [1.0, -2.0, 3.0, 0.25];
        let x = lu_solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (lhs, rhs) in ax.iter().zip(b.iter()) {
            assert!((lhs - rhs).abs() < 1e-10);
        }
    }
}

//! Descriptive statistics used by experiment reporting.
//!
//! Mirrors the paper's statistical treatment: medians and quartiles for the
//! boxplots, 95% confidence intervals for convergence curves (Figs. 5/6),
//! and MAPE for the prediction-error studies (Figs. 9/10).

/// Arithmetic mean; returns `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator); returns `None` for fewer
/// than two samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Linear-interpolation quantile (`q` in `[0, 1]`); returns `None` for empty
/// input or out-of-range `q`.
///
/// # Examples
///
/// ```
/// use freedom_linalg::stats::quantile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// [`quantile`] computed by selection instead of a full sort: `O(n)`
/// and allocation-free, at the price of permuting `xs`. Returns the
/// same value as `quantile` for NaN-free input (the interpolated order
/// statistics are well-defined regardless of how ties are arranged);
/// use it when the slice is large and its order is disposable — e.g.
/// the fleet replay's per-invocation latency array at week scale.
pub fn quantile_in_place(xs: &mut [f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal);
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    let (_, &mut lo_val, rest) = xs.select_nth_unstable_by(lo, cmp);
    let hi_val = if hi == lo {
        lo_val
    } else {
        // `hi == lo + 1`: the (lo+1)-th order statistic is the minimum
        // of everything partitioned to the right of `lo`.
        rest.iter().copied().fold(f64::INFINITY, f64::min)
    };
    Some(lo_val * (1.0 - frac) + hi_val * frac)
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Five-number summary used by the paper's boxplots: median, quartiles, and
/// 1.5×IQR whiskers clamped to the data range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotSummary {
    /// Lower whisker (smallest observation ≥ Q1 − 1.5·IQR).
    pub lo_whisker: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (largest observation ≤ Q3 + 1.5·IQR).
    pub hi_whisker: f64,
    /// Number of outliers beyond the whiskers.
    pub outliers: usize,
}

/// Computes the paper-style boxplot summary; returns `None` for empty input.
pub fn boxplot(xs: &[f64]) -> Option<BoxplotSummary> {
    let q1 = quantile(xs, 0.25)?;
    let q3 = quantile(xs, 0.75)?;
    let med = median(xs)?;
    let iqr = q3 - q1;
    let lo_fence = q1 - 1.5 * iqr;
    let hi_fence = q3 + 1.5 * iqr;
    let lo_whisker = xs
        .iter()
        .copied()
        .filter(|&x| x >= lo_fence)
        .fold(f64::INFINITY, f64::min);
    let hi_whisker = xs
        .iter()
        .copied()
        .filter(|&x| x <= hi_fence)
        .fold(f64::NEG_INFINITY, f64::max);
    let outliers = xs.iter().filter(|&&x| x < lo_fence || x > hi_fence).count();
    Some(BoxplotSummary {
        lo_whisker,
        q1,
        median: med,
        q3,
        hi_whisker,
        outliers,
    })
}

/// Mean absolute percentage error between actual and predicted values, in
/// percent; returns `None` when lengths differ, input is empty, or an actual
/// value is zero.
///
/// # Examples
///
/// ```
/// use freedom_linalg::stats::mape;
///
/// let actual = [10.0, 20.0];
/// let predicted = [11.0, 18.0];
/// assert_eq!(mape(&actual, &predicted), Some(10.0));
/// ```
pub fn mape(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    if actual.is_empty() || actual.len() != predicted.len() {
        return None;
    }
    let mut total = 0.0;
    for (a, p) in actual.iter().zip(predicted) {
        if *a == 0.0 {
            return None;
        }
        total += ((a - p) / a).abs();
    }
    Some(100.0 * total / actual.len() as f64)
}

/// Half-width of the 95% normal-approximation confidence interval around the
/// mean; returns `None` for fewer than two samples.
pub fn ci95_half_width(xs: &[f64]) -> Option<f64> {
    let sd = std_dev(xs)?;
    Some(1.96 * sd / (xs.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0]), None);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap() - 2.138).abs() < 1e-3);
    }

    #[test]
    fn quantile_bounds() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[5.0], 0.5), Some(5.0));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantile_in_place_matches_sorting_quantile() {
        assert_eq!(quantile_in_place(&mut [], 0.5), None);
        assert_eq!(quantile_in_place(&mut [1.0], -0.1), None);
        // Seeded pseudo-random data with duplicates, against the
        // sort-based reference at every breakpoint-straddling q.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for n in [1usize, 2, 3, 7, 64, 257] {
            let xs: Vec<f64> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 56) as f64) / 8.0
                })
                .collect();
            for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 1.0] {
                let expect = quantile(&xs, q).unwrap();
                let got = quantile_in_place(&mut xs.clone(), q).unwrap();
                assert_eq!(got.to_bits(), expect.to_bits(), "n={n}, q={q}");
            }
        }
    }

    #[test]
    fn boxplot_flags_outliers() {
        let mut xs = vec![1.0, 2.0, 2.5, 3.0, 3.5, 4.0];
        xs.push(100.0); // an outlier
        let b = boxplot(&xs).unwrap();
        assert_eq!(b.outliers, 1);
        assert!(b.hi_whisker <= 4.0 + 1e-12);
        assert!(b.q1 <= b.median && b.median <= b.q3);
    }

    #[test]
    fn mape_validates_input() {
        assert_eq!(mape(&[], &[]), None);
        assert_eq!(mape(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(mape(&[0.0], &[1.0]), None);
        assert_eq!(mape(&[10.0], &[10.0]), Some(0.0));
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = [1.0, 2.0, 3.0, 4.0];
        let many: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64).collect();
        assert!(ci95_half_width(&many).unwrap() < ci95_half_width(&few).unwrap());
    }
}

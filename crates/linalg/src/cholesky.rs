//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! The Gaussian-process surrogate factorizes its kernel matrix on every fit;
//! kernel matrices can be numerically borderline, so [`cholesky`] retries
//! with growing diagonal jitter before giving up, the standard GP trick.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use freedom_linalg::{Matrix, cholesky};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
/// let ch = cholesky(&a, 0.0).unwrap();
/// let x = ch.solve(&[8.0, 7.0]).unwrap();
/// let ax = a.matvec(&x).unwrap();
/// assert!((ax[0] - 8.0).abs() < 1e-10);
/// assert!((ax[1] - 7.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// The jitter that was actually added to the diagonal to achieve
    /// positive definiteness (0.0 when none was needed).
    jitter_used: f64,
}

impl Cholesky {
    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Diagonal jitter that was required for the factorization to succeed.
    pub fn jitter_used(&self) -> f64 {
        self.jitter_used
    }

    /// Solves `A x = b` via forward then backward substitution.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.solve_lower(b)?;
        self.solve_upper(&y)
    }

    /// Solves `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", b.len()),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.l.get(i, j) * y[j];
            }
            y[i] = sum / self.l.get(i, i);
        }
        Ok(y)
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if y.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("vector of length {}", y.len()),
            });
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.l.get(j, i) * x[j];
            }
            x[i] = sum / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Log-determinant of `A`, i.e. `2 Σ log L[i][i]`.
    ///
    /// Needed for the GP log-marginal-likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

/// Factorizes a symmetric positive-definite matrix, retrying with growing
/// diagonal jitter starting from `initial_jitter`.
///
/// Pass `0.0` to attempt an exact factorization first. On failure the
/// routine escalates jitter by ×10 up to `1e-2 · mean(diag)` before
/// returning [`LinalgError::NotPositiveDefinite`].
pub fn cholesky(a: &Matrix, initial_jitter: f64) -> Result<Cholesky> {
    let n = a.rows();
    if n != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let mean_diag = (0..n).map(|i| a.get(i, i).abs()).sum::<f64>() / n as f64;
    let max_jitter = (1e-2 * mean_diag).max(1e-10);
    let mut jitter = initial_jitter;
    loop {
        match try_factorize(a, jitter) {
            Ok(l) => {
                return Ok(Cholesky {
                    l,
                    jitter_used: jitter,
                })
            }
            Err(_) if jitter < max_jitter => {
                jitter = if jitter == 0.0 { 1e-10 } else { jitter * 10.0 };
            }
            Err(e) => return Err(e),
        }
    }
}

fn try_factorize(a: &Matrix, jitter: f64) -> Result<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            if i == j {
                sum += jitter;
            }
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 3.0, 0.4], &[0.6, 0.4, 2.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let ch = cholesky(&a, 0.0).unwrap();
        let l = ch.factor();
        let lt = l.transpose();
        let back = l.matmul(&lt).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert!((back.get(r, c) - a.get(r, c)).abs() < 1e-10);
            }
        }
        assert_eq!(ch.jitter_used(), 0.0);
    }

    #[test]
    fn solve_matches_direct_solution() {
        let a = spd3();
        let ch = cholesky(&a, 0.0).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (lhs, rhs) in ax.iter().zip(b.iter()) {
            assert!((lhs - rhs).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(diag(4, 9)) = 36.
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]).unwrap();
        let ch = cholesky(&a, 0.0).unwrap();
        assert!((ch.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn jitter_rescues_semidefinite_matrix() {
        // Rank-1 matrix: positive semi-definite but not definite.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let ch = cholesky(&a, 0.0).unwrap();
        assert!(ch.jitter_used() > 0.0);
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(
            cholesky(&a, 0.0).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            cholesky(&a, 0.0).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }
}

//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! The Gaussian-process surrogate factorizes its kernel matrix on every fit;
//! kernel matrices can be numerically borderline, so [`cholesky`] retries
//! with growing diagonal jitter before giving up, the standard GP trick.
//!
//! This is the optimization hot path of the whole workspace, so the
//! routines here work directly on the matrix's flat row-major buffer:
//! every inner loop is a contiguous slice dot-product (the Cholesky–Crout
//! ordering makes both operands row prefixes, which is as cache-friendly
//! as a blocked layout at the kernel sizes we see, n ≤ a few hundred).
//! Three additions serve the incremental BO loop:
//!
//! - [`Cholesky::append_row`] extends a factor by one trailing row in
//!   O(n²), bit-identically to refactorizing from scratch — row-by-row
//!   Cholesky only ever reads previously finished rows, so the appended
//!   row is *the same arithmetic* the full factorization would have done;
//! - [`Cholesky::inv_diag`] returns `diag(A⁻¹)` in one O(n³/6) triangular
//!   inversion instead of n full solves (the leave-one-out score needs
//!   exactly this diagonal);
//! - [`Cholesky::solve_lower_multi`] forward-substitutes many right-hand
//!   sides in one pass over the factor (batched GP prediction).

use crate::{LinalgError, Matrix, Result};

/// Dot product of two equal-length slices.
///
/// Every subtraction of partial sums in this module goes through this
/// helper so that the full factorization and the incremental
/// [`Cholesky::append_row`] path accumulate in the same order and stay
/// bit-identical.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        s += x * y;
    }
    s
}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use freedom_linalg::{Matrix, cholesky};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
/// let ch = cholesky(&a, 0.0).unwrap();
/// let x = ch.solve(&[8.0, 7.0]).unwrap();
/// let ax = a.matvec(&x).unwrap();
/// assert!((ax[0] - 8.0).abs() < 1e-10);
/// assert!((ax[1] - 7.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// The jitter that was actually added to the diagonal to achieve
    /// positive definiteness (0.0 when none was needed).
    jitter_used: f64,
}

impl Cholesky {
    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Diagonal jitter that was required for the factorization to succeed.
    pub fn jitter_used(&self) -> f64 {
        self.jitter_used
    }

    /// Solves `A x = b` via forward then backward substitution.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.l.rows()];
        self.solve_lower_into(b, &mut y)?;
        let mut x = vec![0.0; self.l.rows()];
        self.solve_upper_into(&y, &mut x)?;
        Ok(x)
    }

    /// Solves `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.l.rows()];
        self.solve_lower_into(b, &mut y)?;
        Ok(y)
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.l.rows()];
        self.solve_upper_into(y, &mut x)?;
        Ok(x)
    }

    /// Forward substitution into a caller-provided buffer (no allocation;
    /// the batched predictors call this in a loop).
    pub fn solve_lower_into(&self, b: &[f64], out: &mut [f64]) -> Result<()> {
        let n = self.l.rows();
        if b.len() != n || out.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vectors of length {n}"),
                found: format!("lengths {} and {}", b.len(), out.len()),
            });
        }
        let l = self.l.as_slice();
        for i in 0..n {
            let row = &l[i * n..i * n + i];
            out[i] = (b[i] - dot(row, &out[..i])) / l[i * n + i];
        }
        Ok(())
    }

    /// Backward substitution into a caller-provided buffer.
    pub fn solve_upper_into(&self, y: &[f64], out: &mut [f64]) -> Result<()> {
        let n = self.l.rows();
        if y.len() != n || out.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vectors of length {n}"),
                found: format!("lengths {} and {}", y.len(), out.len()),
            });
        }
        let l = self.l.as_slice();
        for i in (0..n).rev() {
            let mut sum = y[i];
            // Lᵀ's row i is L's column i: strided access is unavoidable
            // here, but the loop body is a single fused multiply-subtract.
            for j in (i + 1)..n {
                sum -= l[j * n + i] * out[j];
            }
            out[i] = sum / l[i * n + i];
        }
        Ok(())
    }

    /// Solves `L Y = Bᵀ` for many right-hand sides at once: each row of
    /// `rhs_rows` is an independent `b`, and each row of the result is the
    /// corresponding `y`.
    ///
    /// Arithmetic per row is identical to [`Cholesky::solve_lower`], so
    /// batched and per-point callers get bit-identical results.
    pub fn solve_lower_multi(&self, rhs_rows: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if rhs_rows.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{n} columns"),
                found: format!("{} columns", rhs_rows.cols()),
            });
        }
        let mut out = Matrix::zeros(rhs_rows.rows(), n);
        for r in 0..rhs_rows.rows() {
            self.solve_lower_into(rhs_rows.row(r), out.row_mut(r))?;
        }
        Ok(out)
    }

    /// The diagonal of `A⁻¹` via one triangular inversion.
    ///
    /// With `W = L⁻¹` (lower triangular), `A⁻¹ = Wᵀ W`, so
    /// `diag(A⁻¹)ᵢ = Σ_{k≥i} W[k][i]²`. This costs O(n³/6) — the previous
    /// implementation solved n basis vectors for O(n³) — and is what the
    /// GP's leave-one-out score needs on every candidate fit.
    pub fn inv_diag(&self) -> Vec<f64> {
        let n = self.l.rows();
        let l = self.l.as_slice();
        // W is built column by column; w[k] holds W[j..=k][j] for the
        // current column j compacted at its natural indices.
        let mut w = vec![0.0; n * n];
        for j in 0..n {
            w[j * n + j] = 1.0 / l[j * n + j];
            for i in (j + 1)..n {
                // W[i][j] = -(Σ_{k=j..i-1} L[i][k]·W[k][j]) / L[i][i].
                let mut s = 0.0;
                for k in j..i {
                    s += l[i * n + k] * w[k * n + j];
                }
                w[i * n + j] = -s / l[i * n + i];
            }
        }
        (0..n)
            .map(|i| (i..n).map(|k| w[k * n + i] * w[k * n + i]).sum())
            .collect()
    }

    /// Log-determinant of `A`, i.e. `2 Σ log L[i][i]`.
    ///
    /// Needed for the GP log-marginal-likelihood.
    pub fn log_det(&self) -> f64 {
        let n = self.l.rows();
        let l = self.l.as_slice();
        (0..n).map(|i| l[i * n + i].ln()).sum::<f64>() * 2.0
    }

    /// Extends the factor of an n×n matrix to (n+1)×(n+1) in O(n²).
    ///
    /// `a_row` is the new trailing row of `A` (length n+1, diagonal entry
    /// last); the jitter recorded at factorization time is applied to the
    /// new diagonal entry, mirroring what a full refactorization would do.
    /// Row-by-row Cholesky computes each row from already-finished rows
    /// only, so the appended row is bit-identical to the one a from-scratch
    /// factorization of the extended matrix would produce.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] (leaving `self`
    /// unchanged) when the extended matrix is not positive definite at the
    /// current jitter — callers should fall back to a full factorization.
    pub fn append_row(&mut self, a_row: &[f64]) -> Result<()> {
        let n = self.l.rows();
        if a_row.len() != n + 1 {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("row of length {}", n + 1),
                found: format!("row of length {}", a_row.len()),
            });
        }
        let l = self.l.as_slice();
        let mut new_row = vec![0.0; n + 1];
        for j in 0..n {
            let (head, _) = new_row.split_at(j);
            let s = dot(head, &l[j * n..j * n + j]);
            new_row[j] = (a_row[j] - s) / l[j * n + j];
        }
        let s = dot(&new_row[..n], &new_row[..n]);
        let d = a_row[n] + self.jitter_used - s;
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        new_row[n] = d.sqrt();

        // Re-lay the flat buffer with one extra column per row.
        let mut data = Vec::with_capacity((n + 1) * (n + 1));
        for i in 0..n {
            data.extend_from_slice(&l[i * n..(i + 1) * n]);
            data.push(0.0);
        }
        data.extend_from_slice(&new_row);
        self.l = Matrix::from_vec(n + 1, n + 1, data)?;
        Ok(())
    }
}

/// Factorizes a symmetric positive-definite matrix, retrying with growing
/// diagonal jitter starting from `initial_jitter`.
///
/// Pass `0.0` to attempt an exact factorization first. On failure the
/// routine escalates jitter by ×10 up to `1e-2 · mean(diag)` before
/// returning [`LinalgError::NotPositiveDefinite`].
pub fn cholesky(a: &Matrix, initial_jitter: f64) -> Result<Cholesky> {
    let n = a.rows();
    if n != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let ad = a.as_slice();
    let mean_diag = (0..n).map(|i| ad[i * n + i].abs()).sum::<f64>() / n as f64;
    let max_jitter = (1e-2 * mean_diag).max(1e-10);
    let mut jitter = initial_jitter;
    loop {
        match try_factorize(a, jitter) {
            Ok(l) => {
                return Ok(Cholesky {
                    l,
                    jitter_used: jitter,
                })
            }
            Err(_) if jitter < max_jitter => {
                jitter = if jitter == 0.0 { 1e-10 } else { jitter * 10.0 };
            }
            Err(e) => return Err(e),
        }
    }
}

/// One Cholesky–Crout pass over the flat buffer. Row i is computed from
/// rows 0..i only (which is what makes [`Cholesky::append_row`] exact).
fn try_factorize(a: &Matrix, jitter: f64) -> Result<Matrix> {
    let n = a.rows();
    let ad = a.as_slice();
    let mut l = Matrix::zeros(n, n);
    let ld = l.as_mut_slice();
    for i in 0..n {
        // Split so row i is writable while rows 0..i stay readable.
        let (done, current) = ld.split_at_mut(i * n);
        let row_i = &mut current[..n];
        for j in 0..i {
            let s = dot(&row_i[..j], &done[j * n..j * n + j]);
            row_i[j] = (ad[i * n + j] - s) / done[j * n + j];
        }
        let s = dot(&row_i[..i], &row_i[..i]);
        let d = ad[i * n + i] + jitter - s;
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        row_i[i] = d.sqrt();
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 3.0, 0.4], &[0.6, 0.4, 2.0]]).unwrap()
    }

    /// An SPD kernel-like matrix of arbitrary size.
    fn spd(n: usize) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = (-((i as f64 - j as f64).powi(2)) / 8.0).exp();
                a.set(i, j, v);
            }
            a.set(i, i, a.get(i, i) + 0.1);
        }
        a
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let ch = cholesky(&a, 0.0).unwrap();
        let l = ch.factor();
        let lt = l.transpose();
        let back = l.matmul(&lt).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert!((back.get(r, c) - a.get(r, c)).abs() < 1e-10);
            }
        }
        assert_eq!(ch.jitter_used(), 0.0);
        assert_eq!(ch.dim(), 3);
    }

    #[test]
    fn solve_matches_direct_solution() {
        let a = spd3();
        let ch = cholesky(&a, 0.0).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (lhs, rhs) in ax.iter().zip(b.iter()) {
            assert!((lhs - rhs).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(diag(4, 9)) = 36.
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]).unwrap();
        let ch = cholesky(&a, 0.0).unwrap();
        assert!((ch.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn jitter_rescues_semidefinite_matrix() {
        // Rank-1 matrix: positive semi-definite but not definite.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let ch = cholesky(&a, 0.0).unwrap();
        assert!(ch.jitter_used() > 0.0);
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(
            cholesky(&a, 0.0).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            cholesky(&a, 0.0).unwrap_err(),
            LinalgError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn inv_diag_matches_basis_solves() {
        let a = spd(17);
        let ch = cholesky(&a, 0.0).unwrap();
        let fast = ch.inv_diag();
        for i in 0..17 {
            let mut e = vec![0.0; 17];
            e[i] = 1.0;
            let col = ch.solve(&e).unwrap();
            assert!(
                (fast[i] - col[i]).abs() < 1e-9 * col[i].abs().max(1.0),
                "diag {i}: {} vs {}",
                fast[i],
                col[i]
            );
        }
    }

    #[test]
    fn append_row_is_bit_identical_to_refactorization() {
        let big = spd(24);
        for n in [1usize, 5, 12, 23] {
            // Factor the leading n×n block, then append row n.
            let mut lead = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    lead.set(i, j, big.get(i, j));
                }
            }
            let mut incr = cholesky(&lead, 0.0).unwrap();
            let row: Vec<f64> = (0..=n).map(|j| big.get(n, j)).collect();
            incr.append_row(&row).unwrap();

            let mut full_in = Matrix::zeros(n + 1, n + 1);
            for i in 0..=n {
                for j in 0..=n {
                    full_in.set(i, j, big.get(i, j));
                }
            }
            let full = cholesky(&full_in, 0.0).unwrap();
            assert_eq!(
                incr.factor().as_slice(),
                full.factor().as_slice(),
                "n = {n}: incremental factor differs from scratch"
            );
        }
    }

    #[test]
    fn append_row_rejects_bad_rows_and_preserves_state() {
        let a = spd3();
        let mut ch = cholesky(&a, 0.0).unwrap();
        let before = ch.factor().clone();
        assert!(matches!(
            ch.append_row(&[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        // A row that breaks positive definiteness is rejected cleanly.
        assert_eq!(
            ch.append_row(&[10.0, 10.0, 10.0, 0.1]).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        assert_eq!(ch.factor(), &before);
    }

    #[test]
    fn solve_lower_multi_matches_individual_solves() {
        let a = spd(9);
        let ch = cholesky(&a, 0.0).unwrap();
        let rhs =
            Matrix::from_vec(4, 9, (0..36).map(|i| ((i * 13) % 7) as f64 - 3.0).collect()).unwrap();
        let multi = ch.solve_lower_multi(&rhs).unwrap();
        for r in 0..4 {
            let single = ch.solve_lower(rhs.row(r)).unwrap();
            assert_eq!(multi.row(r), single.as_slice(), "row {r}");
        }
        let bad = Matrix::zeros(2, 5);
        assert!(ch.solve_lower_multi(&bad).is_err());
    }

    #[test]
    fn into_variants_validate_lengths() {
        let ch = cholesky(&spd3(), 0.0).unwrap();
        let mut out = vec![0.0; 2];
        assert!(ch.solve_lower_into(&[1.0, 2.0, 3.0], &mut out).is_err());
        assert!(ch.solve_upper_into(&[1.0, 2.0], &mut [0.0; 3]).is_err());
    }
}

//! Standard normal distribution helpers.
//!
//! The Expected Improvement acquisition function (§5.1) needs the standard
//! normal PDF and CDF; the CDF is built on an Abramowitz–Stegun style `erf`
//! approximation (max absolute error ≈ 1.5e-7, far below the noise floor of
//! any measurement in this workspace).

/// Error function approximation (Abramowitz & Stegun 7.1.26).
///
/// # Examples
///
/// ```
/// use freedom_linalg::normal::erf;
///
/// assert!(erf(0.0).abs() < 1e-8);
/// assert!((erf(1.0) - 0.8427007).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal probability density function.
pub fn pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function.
///
/// # Examples
///
/// ```
/// use freedom_linalg::normal::cdf;
///
/// assert!((cdf(0.0) - 0.5).abs() < 1e-8);
/// assert!(cdf(5.0) > 0.999_999);
/// assert!(cdf(-5.0) < 1e-6);
/// ```
pub fn cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 3.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_saturates() {
        assert!((erf(6.0) - 1.0).abs() < 1e-9);
        assert!((erf(-6.0) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_known_values() {
        // Phi(1.96) ~ 0.975.
        assert!((cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn pdf_peaks_at_zero_and_is_symmetric() {
        assert!(pdf(0.0) > pdf(0.5));
        assert!((pdf(1.3) - pdf(-1.3)).abs() < 1e-15);
        assert!((pdf(0.0) - 0.3989422804).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let c = cdf(x);
            assert!(c >= prev - 1e-12);
            prev = c;
            x += 0.05;
        }
    }
}

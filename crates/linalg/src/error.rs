//! Error type for the linear-algebra kernel.

use std::fmt;

/// Errors produced by dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions do not match the operation's requirements.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was supplied.
        found: String,
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorized or inverted.
    Singular,
    /// The matrix is not positive definite, so a Cholesky factorization does
    /// not exist even after jitter was added to the diagonal.
    NotPositiveDefinite,
    /// An input was empty where at least one element is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Self::Singular => write!(f, "matrix is singular"),
            Self::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            Self::Empty => write!(f, "input is empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        let e = LinalgError::DimensionMismatch {
            expected: "3x3".into(),
            found: "2x3".into(),
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3x3, found 2x3");
        assert_eq!(LinalgError::Singular.to_string(), "matrix is singular");
        assert_eq!(
            LinalgError::NotPositiveDefinite.to_string(),
            "matrix is not positive definite"
        );
        assert_eq!(LinalgError::Empty.to_string(), "input is empty");
    }
}

//! Small dense linear-algebra kernel used across the workspace.
//!
//! The paper's cost model (§3.2) solves small linear systems of instance
//! prices, and the Gaussian-process surrogate (§5.1) needs Cholesky
//! factorization of kernel matrices. Rather than pulling a heavyweight
//! dependency, this crate provides exactly the dense routines those users
//! need, with a fallible API (`Result`) and no panics on singular inputs.
//!
//! # Examples
//!
//! ```
//! use freedom_linalg::{Matrix, lu_solve};
//!
//! // Solve the 2x2 system { x + y = 3, x - y = 1 } => x = 2, y = 1.
//! let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]).unwrap();
//! let x = lu_solve(&a, &[3.0, 1.0]).unwrap();
//! assert!((x[0] - 2.0).abs() < 1e-12);
//! assert!((x[1] - 1.0).abs() < 1e-12);
//! ```

mod cholesky;
mod error;
mod lu;
mod matrix;
pub mod normal;
pub mod stats;

pub use cholesky::{cholesky, Cholesky};
pub use error::LinalgError;
pub use lu::{lu_solve, LuFactors};
pub use matrix::Matrix;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

//! Row-major dense matrix.

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// This is deliberately minimal: the workspace only manipulates small
/// matrices (kernel matrices of at most a few hundred rows, and 3×3 pricing
/// systems), so clarity and a fallible API win over micro-optimization.
///
/// # Examples
///
/// ```
/// use freedom_linalg::Matrix;
///
/// let m = Matrix::identity(3);
/// assert_eq!(m.get(1, 1), 1.0);
/// assert_eq!(m.get(0, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// Returns [`LinalgError::Empty`] when no rows are given and
    /// [`LinalgError::DimensionMismatch`] when rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let first = rows.first().ok_or(LinalgError::Empty)?;
        let cols = first.len();
        if cols == 0 {
            return Err(LinalgError::Empty);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    expected: format!("row of length {cols}"),
                    found: format!("row of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `data.len()` is not
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds; callers index within the
    /// shape they constructed, so out-of-bounds access is a programming
    /// error.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds (programming error).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds (programming error).
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds (programming error).
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", other.rows),
            });
        }
        let mut out = Self::zeros(self.rows, other.cols);
        // i-k-j loop over the flat buffers: the inner operation is a
        // contiguous AXPY on the output row, so the whole product streams
        // through memory.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Returns `true` when the matrix is square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates_shape() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a).unwrap(), a);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matvec_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let n = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert!(!n.is_symmetric(1e-12));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
    }
}

//! Property-based tests for the linear-algebra kernel.

use freedom_linalg::{cholesky, lu_solve, Matrix};
use proptest::prelude::*;

/// Strategy: a random well-conditioned SPD matrix built as `B Bᵀ + n·I`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, n * n).prop_map(move |vals| {
        let b = Matrix::from_vec(n, n, vals).expect("shape is consistent");
        let bt = b.transpose();
        let mut a = b.matmul(&bt).expect("square product");
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64);
        }
        a
    })
}

proptest! {
    #[test]
    fn cholesky_reconstructs_spd(a in spd_matrix(4)) {
        let ch = cholesky(&a, 0.0).expect("SPD by construction");
        let l = ch.factor();
        let back = l.matmul(&l.transpose()).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!((back.get(r, c) - a.get(r, c)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cholesky_solve_has_small_residual(
        a in spd_matrix(4),
        b in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        let ch = cholesky(&a, 0.0).unwrap();
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (lhs, rhs) in ax.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-6);
        }
    }

    #[test]
    fn lu_solve_has_small_residual(
        vals in prop::collection::vec(-5.0f64..5.0, 9),
        b in prop::collection::vec(-10.0f64..10.0, 3),
    ) {
        // Make the matrix diagonally dominant so it is guaranteed invertible.
        let mut a = Matrix::from_vec(3, 3, vals).unwrap();
        for i in 0..3 {
            let row_sum: f64 = (0..3).map(|j| a.get(i, j).abs()).sum();
            a.set(i, i, row_sum + 1.0);
        }
        let x = lu_solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (lhs, rhs) in ax.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }
    }

    #[test]
    fn transpose_is_involution(vals in prop::collection::vec(-5.0f64..5.0, 12)) {
        let a = Matrix::from_vec(3, 4, vals).unwrap();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn quantiles_are_monotone(mut xs in prop::collection::vec(-100.0f64..100.0, 1..40)) {
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let q25 = freedom_linalg::stats::quantile(&xs, 0.25).unwrap();
        let q50 = freedom_linalg::stats::quantile(&xs, 0.50).unwrap();
        let q75 = freedom_linalg::stats::quantile(&xs, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
    }

    #[test]
    fn normal_cdf_in_unit_interval(x in -20.0f64..20.0) {
        let c = freedom_linalg::normal::cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
    }
}

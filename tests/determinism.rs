//! Determinism across the whole stack: identical seeds replay identically,
//! different seeds diverge. Reproducibility is what makes the experiment
//! harness trustworthy.

use faas_freedom::optimizer::SearchSpace;
use faas_freedom::prelude::*;

#[test]
fn ground_truth_replays_identically() {
    let function = FunctionKind::Transcode;
    let input = function.default_input();
    let configs = SearchSpace::table1();
    let a = collect_ground_truth(function, &input, configs.configs(), 3, 77).unwrap();
    let b = collect_ground_truth(function, &input, configs.configs(), 3, 77).unwrap();
    assert_eq!(a.points(), b.points());
    let c = collect_ground_truth(function, &input, configs.configs(), 3, 78).unwrap();
    assert_ne!(a.points(), c.points());
}

#[test]
fn full_autotune_replays_identically() {
    let run = |seed| {
        Autotuner::new(SurrogateKind::Gp)
            .tune_offline(
                FunctionKind::Linpack,
                &FunctionKind::Linpack.default_input(),
                Objective::ExecutionCost,
                seed,
            )
            .unwrap()
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a.run.trials, b.run.trials);
    assert_eq!(a.recommended(), b.recommended());
    let c = run(124);
    assert_ne!(a.run.trials, c.run.trials);
}

#[test]
fn every_surrogate_kind_replays_identically() {
    let function = FunctionKind::S3;
    let table = collect_ground_truth(
        function,
        &function.default_input(),
        SearchSpace::table1().configs(),
        3,
        5,
    )
    .unwrap();
    for kind in SurrogateKind::ALL {
        let run_once = || {
            let mut evaluator = TableEvaluator::new(&table);
            BayesianOptimizer::new(
                kind,
                BoConfig {
                    seed: 9,
                    ..BoConfig::default()
                },
            )
            .optimize(
                &SearchSpace::table1(),
                &mut evaluator,
                Objective::ExecutionTime,
            )
            .unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.trials, b.trials, "{kind} diverged across replays");
    }
}

#[test]
fn interfaces_replay_identically() {
    use faas_freedom::core::interfaces::pareto_interface;
    let a = pareto_interface(
        FunctionKind::Faceblur,
        &FunctionKind::Faceblur.default_input(),
        SurrogateKind::Gp,
        55,
    )
    .unwrap();
    let b = pareto_interface(
        FunctionKind::Faceblur,
        &FunctionKind::Faceblur.default_input(),
        SurrogateKind::Gp,
        55,
    )
    .unwrap();
    assert_eq!(a, b);
}

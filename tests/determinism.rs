//! Determinism across the whole stack: identical seeds replay identically,
//! different seeds diverge. Reproducibility is what makes the experiment
//! harness trustworthy.

use faas_freedom::optimizer::SearchSpace;
use faas_freedom::prelude::*;

#[test]
fn ground_truth_replays_identically() {
    let function = FunctionKind::Transcode;
    let input = function.default_input();
    let configs = SearchSpace::table1();
    let a = collect_ground_truth(function, &input, configs.configs(), 3, 77).unwrap();
    let b = collect_ground_truth(function, &input, configs.configs(), 3, 77).unwrap();
    assert_eq!(a.points(), b.points());
    let c = collect_ground_truth(function, &input, configs.configs(), 3, 78).unwrap();
    assert_ne!(a.points(), c.points());
}

#[test]
fn full_autotune_replays_identically() {
    let run = |seed| {
        Autotuner::new(SurrogateKind::Gp)
            .tune_offline(
                FunctionKind::Linpack,
                &FunctionKind::Linpack.default_input(),
                Objective::ExecutionCost,
                seed,
            )
            .unwrap()
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a.run.trials, b.run.trials);
    assert_eq!(a.recommended(), b.recommended());
    let c = run(124);
    assert_ne!(a.run.trials, c.run.trials);
}

#[test]
fn every_surrogate_kind_replays_identically() {
    let function = FunctionKind::S3;
    let table = collect_ground_truth(
        function,
        &function.default_input(),
        SearchSpace::table1().configs(),
        3,
        5,
    )
    .unwrap();
    for kind in SurrogateKind::ALL {
        let run_once = || {
            let mut evaluator = TableEvaluator::new(&table);
            BayesianOptimizer::new(
                kind,
                BoConfig {
                    seed: 9,
                    ..BoConfig::default()
                },
            )
            .optimize(
                &SearchSpace::table1(),
                &mut evaluator,
                Objective::ExecutionTime,
            )
            .unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.trials, b.trials, "{kind} diverged across replays");
    }
}

/// Every fig* experiment must produce bit-identical output whether its
/// repetitions run sequentially (threads = 1) or fanned out across cores.
/// `{:?}` formatting round-trips `f64`s exactly, so string equality is bit
/// equality of every number in the result.
#[test]
fn every_experiment_is_bit_identical_parallel_vs_sequential() {
    use freedom_experiments as exp;
    use freedom_experiments::ExperimentOpts;

    let sequential = ExperimentOpts::fast().with_threads(1);
    let parallel = ExperimentOpts::fast().with_threads(8);
    let objectives = [Objective::ExecutionTime, Objective::ExecutionCost];

    macro_rules! check {
        ($name:literal, $run:expr) => {{
            let run = $run;
            let a = format!("{:?}", run(&sequential));
            let b = format!("{:?}", run(&parallel));
            assert_eq!(a, b, "{} diverged between sequential and parallel", $name);
        }};
    }

    check!("fig01", |o: &ExperimentOpts| exp::fig01_config_spread::run(
        o
    )
    .unwrap());
    check!("fig03", |o: &ExperimentOpts| exp::fig03_strategies::run(o)
        .unwrap());
    check!("table3", |o: &ExperimentOpts| {
        exp::table3_alternatives::run(o).unwrap()
    });
    check!("fig04", |o: &ExperimentOpts| {
        exp::fig04_sampling_vs_bo::run(o).unwrap()
    });
    for objective in objectives {
        check!("fig05/06", |o: &ExperimentOpts| {
            exp::fig05_convergence::run(o, objective).unwrap()
        });
    }
    check!("fig07", |o: &ExperimentOpts| {
        exp::fig07_input_specific::run(o).unwrap()
    });
    check!("fig08", |o: &ExperimentOpts| {
        exp::fig08_online_violations::run(o).unwrap()
    });
    for scenario in [
        exp::fig09_mape::Scenario::WholeSpace,
        exp::fig09_mape::Scenario::PerFamilyBest,
    ] {
        check!("fig09/10", |o: &ExperimentOpts| exp::fig09_mape::run(
            o, scenario
        )
        .unwrap());
    }
    check!("fig12", |o: &ExperimentOpts| {
        exp::fig12_pareto_distance::run(o).unwrap()
    });
    check!("fig13", |o: &ExperimentOpts| exp::fig13_weighted_mo::run(o)
        .unwrap());
    check!("fig14", |o: &ExperimentOpts| exp::fig14_hierarchical::run(
        o
    )
    .unwrap());
    check!("fig15", |o: &ExperimentOpts| {
        exp::fig15_provider_savings::run(o).unwrap()
    });
    check!("ablation", |o: &ExperimentOpts| exp::ablation_study::run(o)
        .unwrap());
    check!("fleet", |o: &ExperimentOpts| exp::fleet_simulation::run(o)
        .unwrap());
    check!("control_loop", |o: &ExperimentOpts| {
        exp::fleet_control_loop::run(o).unwrap()
    });
}

/// The windowed fleet replay must be bit-identical to the sequential
/// reference engine on the 120-function heavy-tail fleet for every
/// placement strategy, thread count, and window size — including window
/// sizes small enough that in-flight placements routinely cross
/// boundaries and supply steps land mid-window, so speculative windows
/// really do get reconciled. Trace generation itself must not depend on
/// how many threads generated the streams. `{:?}` formatting round-trips
/// `f64`s exactly, so string equality is bit equality.
#[test]
fn fleet_windowed_replay_matches_sequential() {
    use faas_freedom::core::fleet::{
        AdmissionPolicy, FleetConfig, FleetSimulator, PlacementStrategy, SupplyProcess, TraceSource,
    };
    use faas_freedom::core::market::MarketConfig;
    use freedom_experiments::fleet_simulation::synthetic_plans;

    let n_functions = 120;
    let duration = 300.0;
    let source = TraceSource::HeavyTail {
        mean_rps: 0.5,
        alpha: 1.5,
    };
    let trace = source.generate(n_functions, duration, 11).unwrap();
    let sharded_trace = source
        .generate_sharded(n_functions, duration, 11, 8)
        .unwrap();
    assert_eq!(
        trace.events(),
        sharded_trace.events(),
        "trace generation diverged across threads"
    );

    let plans = synthetic_plans(n_functions, 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();
    // A scarce, fluctuating market under admission control: carry-over
    // state, demotions, and policy rejections all cross window
    // boundaries.
    let config = FleetConfig {
        market: MarketConfig {
            vms_per_family: 3,
            supply: SupplyProcess {
                step_secs: 15.0,
                min_fraction: 0.3,
                seed: 21,
            },
            admission: AdmissionPolicy::Headroom {
                max_utilization: 0.85,
            },
            ..MarketConfig::default()
        },
        ..FleetConfig::default()
    };
    for strategy in PlacementStrategy::ALL {
        let sequential = sim.run(&trace, strategy, &config).unwrap();
        for threads in [1, 8] {
            for window_secs in [1.0, 10.0, 60.0] {
                let windowed = sim
                    .run_windowed(&trace, strategy, &config, threads, window_secs)
                    .unwrap();
                assert_eq!(
                    format!("{sequential:?}"),
                    format!("{windowed:?}"),
                    "{strategy:?} diverged at {threads} threads, {window_secs}s windows"
                );
            }
        }
    }

    // The other workload shapes stress reconciliation differently
    // (bursty and diurnal traffic drain the market and let speculation
    // bulk-verify; steady Poisson keeps boundaries dense): every
    // generator gets a windowed-vs-sequential bit-identity check too.
    for (name, source) in freedom_experiments::fleet_simulation::trace_sources(duration) {
        if name == "heavy_tail" {
            continue; // covered exhaustively above
        }
        let trace = source.generate(n_functions, duration, 11).unwrap();
        for strategy in PlacementStrategy::ALL {
            let sequential = sim.run(&trace, strategy, &config).unwrap();
            for window_secs in [10.0, 60.0] {
                let windowed = sim
                    .run_windowed(&trace, strategy, &config, 8, window_secs)
                    .unwrap();
                assert_eq!(
                    format!("{sequential:?}"),
                    format!("{windowed:?}"),
                    "{name}/{strategy:?} diverged at {window_secs}s windows"
                );
            }
        }
    }
}

/// The closed control loop must not break windowed determinism: with any
/// controller evolving admission and placements mid-replay, the windowed
/// engine stays bit-identical to the sequential reference for every
/// thread count and window size — including 1 s windows that slice every
/// 15 s control epoch across many boundaries, so carried controller
/// state, partial observation epochs, and mid-window ticks all get
/// exercised, and the right-sizer's surrogates are reconstructed from
/// the carried observation log over and over.
#[test]
fn fleet_control_loop_is_windowed_bit_identical() {
    use faas_freedom::core::fleet::{
        AdmissionPolicy, ControlConfig, ControllerConfig, FleetConfig, FleetSimulator, PidConfig,
        PlacementStrategy, RightSizerConfig, SupplyProcess, TraceSource,
    };
    use faas_freedom::core::market::MarketConfig;
    use freedom_experiments::fleet_simulation::synthetic_plans;

    let n_functions = 120;
    let duration = 300.0;
    let trace = TraceSource::HeavyTail {
        mean_rps: 0.5,
        alpha: 1.5,
    }
    .generate(n_functions, duration, 11)
    .unwrap();
    let plans = synthetic_plans(n_functions, 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();
    for controller in [
        ControllerConfig::Static,
        ControllerConfig::HeadroomPid(PidConfig::default()),
        ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
    ] {
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 3,
                supply: SupplyProcess {
                    step_secs: 15.0,
                    min_fraction: 0.3,
                    seed: 21,
                },
                admission: AdmissionPolicy::Headroom {
                    max_utilization: 0.85,
                },
                ..MarketConfig::default()
            },
            control: ControlConfig {
                cadence_secs: 15.0,
                controller,
            },
            ..FleetConfig::default()
        };
        let sequential = sim
            .run(&trace, PlacementStrategy::IdleAware, &config)
            .unwrap();
        assert!(
            !sequential.control.is_empty(),
            "{controller:?} must tick over a 300 s trace"
        );
        for threads in [1, 8] {
            for window_secs in [1.0, 10.0, 60.0] {
                let windowed = sim
                    .run_windowed(
                        &trace,
                        PlacementStrategy::IdleAware,
                        &config,
                        threads,
                        window_secs,
                    )
                    .unwrap();
                assert_eq!(
                    format!("{sequential:?}"),
                    format!("{windowed:?}"),
                    "{controller:?} diverged at {threads} threads, {window_secs}s windows"
                );
            }
        }
    }
}

/// The streaming pipeline's acceptance guard: for every trace source —
/// the four synthetic generators plus the Azure CSV fixture streamed
/// through the chunked reader — and every controller, the streaming
/// engines (`run_stream`, `run_stream_windowed`) replay bit-identically
/// to the materialized reference at threads {1, 8} × windows
/// {1, 10, 60} s. The 1 s windows make the epoch re-seek table dense
/// (hundreds of cursor checkpoints) and slice every control epoch
/// across many boundaries, so checkpoint rewind, carried controller
/// state, and the CSV reader's lookahead window all get exercised
/// together. On top of the default engine (timer wheel + checkpoint
/// ladder), every (source, controller) pair also replays through the
/// sorted-drain completion queue and through a config that forces the
/// sequential exact-carry fallback, pinning both alternate code paths
/// to the same bit-identity contract.
#[test]
fn streaming_replay_is_bit_identical_for_every_source_and_controller() {
    use faas_freedom::core::fleet::{
        AdmissionPolicy, CompletionQueueKind, ControlConfig, ControllerConfig, FleetConfig,
        FleetSimulator, PidConfig, PlacementStrategy, ReplayConfig, RightSizerConfig, StreamTrace,
        SupplyProcess,
    };
    use faas_freedom::core::market::MarketConfig;
    use freedom_experiments::fleet_simulation::{synthetic_plans, trace_sources, AZURE_FIXTURE};

    let n_functions = 120;
    let duration = 300.0;
    let mut traces: Vec<(&str, StreamTrace)> = trace_sources(duration)
        .iter()
        .map(|&(name, source)| {
            (
                name,
                StreamTrace::generate_sharded(source, n_functions, duration, 11, 8).unwrap(),
            )
        })
        .collect();
    traces.push(("azure", StreamTrace::from_csv(AZURE_FIXTURE).unwrap()));

    for (name, lazy) in &traces {
        let plans = synthetic_plans(lazy.n_functions(), 4).unwrap();
        let sim = FleetSimulator::new(plans).unwrap();
        let full = lazy.materialize().unwrap();
        assert_eq!(lazy.len(), full.len(), "{name} scan miscounted");
        for controller in [
            ControllerConfig::Static,
            ControllerConfig::HeadroomPid(PidConfig::default()),
            ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
        ] {
            let config = FleetConfig {
                market: MarketConfig {
                    vms_per_family: 3,
                    supply: SupplyProcess {
                        step_secs: 15.0,
                        min_fraction: 0.3,
                        seed: 21,
                    },
                    admission: AdmissionPolicy::Headroom {
                        max_utilization: 0.85,
                    },
                    ..MarketConfig::default()
                },
                control: ControlConfig {
                    cadence_secs: 15.0,
                    controller,
                },
                ..FleetConfig::default()
            };
            let reference = sim
                .run(&full, PlacementStrategy::IdleAware, &config)
                .unwrap();
            let streamed = sim
                .run_stream(lazy, PlacementStrategy::IdleAware, &config)
                .unwrap();
            assert_eq!(
                format!("{reference:?}"),
                format!("{streamed:?}"),
                "{name}/{controller:?}: streaming diverged from materialized"
            );
            for threads in [1, 8] {
                for window_secs in [1.0, 10.0, 60.0] {
                    let windowed = sim
                        .run_stream_windowed(
                            lazy,
                            PlacementStrategy::IdleAware,
                            &config,
                            threads,
                            window_secs,
                        )
                        .unwrap();
                    assert_eq!(
                        format!("{reference:?}"),
                        format!("{windowed:?}"),
                        "{name}/{controller:?} diverged at {threads} threads, \
                         {window_secs}s windows"
                    );
                }
            }
            // The alternate engine paths: the sorted-drain completion
            // queue (the timer wheel's fallback twin) and a config that
            // disables speculation entirely, forcing the sequential
            // exact-carry fallback through the checkpoint ladder.
            for (label, replay) in [
                (
                    "sorted-drain",
                    ReplayConfig {
                        completion_queue: CompletionQueueKind::SortedDrain,
                        ..ReplayConfig::default()
                    },
                ),
                (
                    "forced-fallback",
                    ReplayConfig {
                        max_speculative_rounds: 0,
                        stall_margin: 0,
                        ..ReplayConfig::default()
                    },
                ),
            ] {
                let windowed = sim
                    .run_stream_windowed_with(
                        lazy,
                        PlacementStrategy::IdleAware,
                        &config,
                        &replay,
                        8,
                        10.0,
                    )
                    .unwrap();
                assert_eq!(
                    format!("{reference:?}"),
                    format!("{windowed:?}"),
                    "{name}/{controller:?} diverged on the {label} replay path"
                );
            }
        }
    }
}

/// The failure-domain acceptance row: with fault injection enabled —
/// zone outages, supply-shock bursts, and dropped notice deliveries over
/// a three-zone market with preemption notices — the determinism lattice
/// must keep holding. For two fault seeds and every controller, the
/// streaming engines replay bit-identically to the materialized
/// sequential reference at threads {1, 8} × windows {1, 60} s. Faults
/// are precomputed simulated-time events, so nothing about injection may
/// depend on which engine, thread, or window boundary observes it.
#[test]
fn fault_injection_preserves_the_determinism_lattice() {
    use faas_freedom::core::fleet::{
        AdmissionPolicy, ControlConfig, ControllerConfig, FaultPlan, FleetConfig, FleetSimulator,
        PidConfig, PlacementStrategy, RightSizerConfig, StreamTrace, SupplyProcess, TraceSource,
        ZoneConfig,
    };
    use faas_freedom::core::market::MarketConfig;
    use freedom_experiments::fleet_simulation::synthetic_plans;

    let n_functions = 120;
    let duration = 300.0;
    let lazy = StreamTrace::generate_sharded(
        TraceSource::HeavyTail {
            mean_rps: 0.5,
            alpha: 1.5,
        },
        n_functions,
        duration,
        11,
        8,
    )
    .unwrap();
    let full = lazy.materialize().unwrap();
    let plans = synthetic_plans(n_functions, 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();

    for fault_seed in [29, 31] {
        for controller in [
            ControllerConfig::Static,
            ControllerConfig::HeadroomPid(PidConfig::default()),
            ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
        ] {
            let config = FleetConfig {
                market: MarketConfig {
                    vms_per_family: 3,
                    supply: SupplyProcess {
                        step_secs: 15.0,
                        min_fraction: 0.3,
                        seed: 21,
                    },
                    zones: ZoneConfig {
                        n_zones: 3,
                        notice_secs: 5.0,
                        shock: 0.5,
                        migration_rebill: 0.5,
                    },
                    admission: AdmissionPolicy::Headroom {
                        max_utilization: 0.85,
                    },
                    ..MarketConfig::default()
                },
                control: ControlConfig {
                    cadence_secs: 15.0,
                    controller,
                },
                faults: FaultPlan {
                    seed: fault_seed,
                    outage_rate_per_hour: 24.0,
                    mean_outage_secs: 30.0,
                    notice_drop_fraction: 0.25,
                    burst_rate_per_hour: 18.0,
                    mean_burst_secs: 15.0,
                    burst_severity: 0.5,
                    ..FaultPlan::NONE
                },
                ..FleetConfig::default()
            };
            let reference = sim
                .run(&full, PlacementStrategy::IdleAware, &config)
                .unwrap();
            // The faults must actually land on this trace, or the row
            // degenerates into the fault-free lattice already covered.
            assert!(
                reference.notified > 0
                    && reference.migrated + reference.drained + reference.spot_demoted > 0,
                "seed {fault_seed}/{controller:?}: inert fault plan: {reference:?}"
            );
            let streamed = sim
                .run_stream(&lazy, PlacementStrategy::IdleAware, &config)
                .unwrap();
            assert_eq!(
                format!("{reference:?}"),
                format!("{streamed:?}"),
                "seed {fault_seed}/{controller:?}: streaming diverged from materialized"
            );
            for threads in [1, 8] {
                for window_secs in [1.0, 60.0] {
                    let windowed = sim
                        .run_stream_windowed(
                            &lazy,
                            PlacementStrategy::IdleAware,
                            &config,
                            threads,
                            window_secs,
                        )
                        .unwrap();
                    assert_eq!(
                        format!("{reference:?}"),
                        format!("{windowed:?}"),
                        "seed {fault_seed}/{controller:?} diverged at {threads} threads, \
                         {window_secs}s windows"
                    );
                }
            }
        }
    }
}

/// The retry acceptance row: with per-invocation transient faults
/// (crash-on-start, mid-flight aborts, stragglers) and the full retry
/// stack — seeded backoff, hedged re-issue, per-family budgets,
/// brownout — layered on top of the zone-outage fault plan, the
/// determinism lattice must keep holding. For two fault seeds and every
/// controller, the streaming engines replay bit-identically to the
/// materialized sequential reference at threads {1, 8} × windows
/// {1, 60} s. Retries are ordinary simulated-time events (`completion <
/// step < notice < retry < tick`), so nothing about scheduling a
/// backoff, racing a hedge, or draining a budget may depend on which
/// engine, thread, or window boundary observes it.
#[test]
fn retries_and_hedging_preserve_the_determinism_lattice() {
    use faas_freedom::core::fleet::{
        AdmissionPolicy, BrownoutConfig, ControlConfig, ControllerConfig, FaultPlan, FleetConfig,
        FleetSimulator, PidConfig, PlacementStrategy, RetryPolicy, RightSizerConfig, StreamTrace,
        SupplyProcess, TraceSource, ZoneConfig,
    };
    use faas_freedom::core::market::MarketConfig;
    use freedom_experiments::fleet_simulation::synthetic_plans;

    let n_functions = 120;
    let duration = 300.0;
    let lazy = StreamTrace::generate_sharded(
        TraceSource::HeavyTail {
            mean_rps: 0.5,
            alpha: 1.5,
        },
        n_functions,
        duration,
        11,
        8,
    )
    .unwrap();
    let full = lazy.materialize().unwrap();
    let plans = synthetic_plans(n_functions, 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();

    for fault_seed in [29, 31] {
        for controller in [
            ControllerConfig::Static,
            ControllerConfig::HeadroomPid(PidConfig::default()),
            ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
        ] {
            let config = FleetConfig {
                market: MarketConfig {
                    vms_per_family: 3,
                    supply: SupplyProcess {
                        step_secs: 15.0,
                        min_fraction: 0.3,
                        seed: 21,
                    },
                    zones: ZoneConfig {
                        n_zones: 3,
                        notice_secs: 5.0,
                        shock: 0.5,
                        migration_rebill: 0.5,
                    },
                    admission: AdmissionPolicy::Headroom {
                        max_utilization: 0.85,
                    },
                    ..MarketConfig::default()
                },
                control: ControlConfig {
                    cadence_secs: 15.0,
                    controller,
                },
                faults: FaultPlan {
                    seed: fault_seed,
                    outage_rate_per_hour: 24.0,
                    mean_outage_secs: 30.0,
                    notice_drop_fraction: 0.25,
                    crash_prob: 0.06,
                    abort_prob: 0.05,
                    straggler_prob: 0.08,
                    straggler_factor: 4.0,
                    ..FaultPlan::NONE
                },
                retry: RetryPolicy {
                    max_attempts: 4,
                    backoff_base_secs: 0.5,
                    backoff_cap_secs: 8.0,
                    hedge_delay_secs: 2.0,
                    budget_per_sec: 1.0,
                    budget_burst: 4.0,
                    brownout: Some(BrownoutConfig {
                        enter_pressure: 0.2,
                        exit_pressure: 0.05,
                        utilization_ceiling: 0.7,
                    }),
                    ..RetryPolicy::DEFAULT
                },
                ..FleetConfig::default()
            };
            let reference = sim
                .run(&full, PlacementStrategy::IdleAware, &config)
                .unwrap();
            // The transients must actually bite on this trace, or the
            // row degenerates into the fault lattice already covered.
            assert!(
                reference.retried > 0,
                "seed {fault_seed}/{controller:?}: inert retry plan: {reference:?}"
            );
            let streamed = sim
                .run_stream(&lazy, PlacementStrategy::IdleAware, &config)
                .unwrap();
            assert_eq!(
                format!("{reference:?}"),
                format!("{streamed:?}"),
                "seed {fault_seed}/{controller:?}: streaming diverged from materialized"
            );
            for threads in [1, 8] {
                for window_secs in [1.0, 60.0] {
                    let windowed = sim
                        .run_stream_windowed(
                            &lazy,
                            PlacementStrategy::IdleAware,
                            &config,
                            threads,
                            window_secs,
                        )
                        .unwrap();
                    assert_eq!(
                        format!("{reference:?}"),
                        format!("{windowed:?}"),
                        "seed {fault_seed}/{controller:?} diverged at {threads} threads, \
                         {window_secs}s windows"
                    );
                }
            }
        }
    }
}

/// The GP's batched predictor must agree with per-point prediction bit for
/// bit, and the warm-start update loop must replay identically.
#[test]
fn gp_batched_and_incremental_paths_are_deterministic() {
    use faas_freedom::surrogates::{GaussianProcess, GpConfig, Surrogate};

    let x: Vec<Vec<f64>> = (0..18).map(|i| vec![i as f64 / 17.0]).collect();
    let y: Vec<f64> = x.iter().map(|r| (3.0 * r[0]).sin() + 2.0).collect();

    let mut gp = GaussianProcess::new(GpConfig::default(), 11);
    gp.fit(&x, &y).unwrap();
    let queries: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
    let batch = gp.predict_batch(&queries).unwrap();
    for (q, b) in queries.iter().zip(&batch) {
        let single = gp.predict(q).unwrap();
        assert_eq!(single.mean.to_bits(), b.mean.to_bits());
        assert_eq!(single.std.to_bits(), b.std.to_bits());
    }

    // Replaying the same sequence of incremental updates is deterministic.
    let run_updates = || {
        let mut gp = GaussianProcess::new(GpConfig::default(), 11);
        gp.fit(&x[..10], &y[..10]).unwrap();
        for k in 11..=18 {
            gp.fit_update(&x[..k], &y[..k], 100 + k as u64).unwrap();
        }
        let preds = gp.predict_batch(&queries).unwrap();
        preds
            .iter()
            .flat_map(|p| [p.mean.to_bits(), p.std.to_bits()])
            .collect::<Vec<u64>>()
    };
    assert_eq!(run_updates(), run_updates());
}

#[test]
fn interfaces_replay_identically() {
    use faas_freedom::core::interfaces::pareto_interface;
    let a = pareto_interface(
        FunctionKind::Faceblur,
        &FunctionKind::Faceblur.default_input(),
        SurrogateKind::Gp,
        55,
    )
    .unwrap();
    let b = pareto_interface(
        FunctionKind::Faceblur,
        &FunctionKind::Faceblur.default_input(),
        SurrogateKind::Gp,
        55,
    )
    .unwrap();
    assert_eq!(a, b);
}

/// The ingestion acceptance row: one trace served three ways — the
/// materialized reference, a single plain CSV, and gzip'd multi-file
/// parts split mid-minute with bounded seam disorder — must replay
/// bit-identically for every controller at threads {1, 8} × windows
/// {1, 60} s, and a crash/resume over the gz multi-file stream must
/// reproduce the uninterrupted report. This is the lattice the
/// week-scale bench leans on: streaming-over-gz ≡ streaming-over-plain
/// ≡ materialized, regardless of how the bytes were sliced into files.
#[test]
fn gz_multi_file_ingestion_preserves_the_determinism_lattice() {
    use faas_freedom::core::fleet::{
        AdmissionPolicy, ControlConfig, ControllerConfig, FleetConfig, FleetSimulator, PidConfig,
        PlacementStrategy, RightSizerConfig, StreamTrace, SupplyProcess,
    };
    use faas_freedom::core::market::MarketConfig;
    use freedom_experiments::fleet_simulation::synthetic_plans;

    // A 30-minute, 40-function trace with seeded counts; every function
    // appears in minute 0 so later seam disorder cannot reorder the
    // first-seen key assignment.
    const HEADER: &str = "app,func,minute,count\n";
    let n_functions = 40usize;
    let minutes = 30u64;
    let mut rows: Vec<String> = Vec::new();
    let mut state = 0x243f_6a88_85a3_08d3u64;
    for minute in 0..minutes {
        for f in 0..n_functions {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let count = 1 + (state >> 59); // 1..=32, never a skipped row
            rows.push(format!("app{},f{f},{minute},{count}\n", f % 7));
        }
    }

    // The single-file plain reference.
    let single = format!("{HEADER}{}", rows.concat());
    let plain = StreamTrace::from_csv(&single).unwrap();

    // Three files cut mid-minute (the row counts per file are not
    // multiples of the per-minute row count), each with its own header
    // — like per-day exports — then bounded disorder at both interior
    // seams: the last pre-seam row trades places with the first
    // post-seam row, so each file's tail reaches one minute into its
    // neighbour. That is well inside the CSV_LOOKAHEAD_MINUTES contract
    // and must be invisible to replay.
    let cut1 = 17 * n_functions + 11;
    let cut2 = 24 * n_functions + 29;
    let mut parts = [
        rows[..cut1].to_vec(),
        rows[cut1..cut2].to_vec(),
        rows[cut2..].to_vec(),
    ];
    for seam in [0usize, 1] {
        let tail = parts[seam].pop().unwrap();
        let head = parts[seam + 1].remove(0);
        parts[seam].push(head);
        parts[seam + 1].insert(0, tail);
    }
    let gz_parts: Vec<Vec<u8>> = parts
        .iter()
        .enumerate()
        .map(|(i, lines)| {
            let csv = format!("{HEADER}{}", lines.concat());
            let mode = if i % 2 == 0 {
                flate::CompressMode::FixedHuffman
            } else {
                flate::CompressMode::Stored
            };
            flate::gzip_compress(csv.as_bytes(), mode)
        })
        .collect();
    let refs: Vec<&[u8]> = gz_parts.iter().map(|p| p.as_slice()).collect();
    let gz = StreamTrace::from_csv_parts(&refs).unwrap();

    assert_eq!(plain.len(), gz.len(), "multi-file scan miscounted");
    assert_eq!(plain.n_functions(), gz.n_functions());
    let full = plain.materialize().unwrap();

    let sim = FleetSimulator::new(synthetic_plans(plain.n_functions(), 4).unwrap()).unwrap();
    for controller in [
        ControllerConfig::Static,
        ControllerConfig::HeadroomPid(PidConfig::default()),
        ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
    ] {
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 3,
                supply: SupplyProcess {
                    step_secs: 15.0,
                    min_fraction: 0.3,
                    seed: 21,
                },
                admission: AdmissionPolicy::Headroom {
                    max_utilization: 0.85,
                },
                ..MarketConfig::default()
            },
            control: ControlConfig {
                cadence_secs: 15.0,
                controller,
            },
            ..FleetConfig::default()
        };
        let reference = sim
            .run(&full, PlacementStrategy::IdleAware, &config)
            .unwrap();
        for (label, lazy) in [("plain", &plain), ("gz-multi", &gz)] {
            let streamed = sim
                .run_stream(lazy, PlacementStrategy::IdleAware, &config)
                .unwrap();
            assert_eq!(
                format!("{reference:?}"),
                format!("{streamed:?}"),
                "{label}/{controller:?}: streaming diverged from materialized"
            );
            for threads in [1, 8] {
                for window_secs in [1.0, 60.0] {
                    let windowed = sim
                        .run_stream_windowed(
                            lazy,
                            PlacementStrategy::IdleAware,
                            &config,
                            threads,
                            window_secs,
                        )
                        .unwrap();
                    assert_eq!(
                        format!("{reference:?}"),
                        format!("{windowed:?}"),
                        "{label}/{controller:?} diverged at {threads} threads, \
                         {window_secs}s windows"
                    );
                }
            }
        }

        // Crash/resume over the gz multi-file stream: kill at a middle
        // snapshot boundary, resume from the persisted state, and the
        // stitched report must still match the materialized reference.
        let snapshot_secs = 120.0;
        let mut epochs = Vec::new();
        let uninterrupted = sim
            .run_stream_resumable(
                &gz,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                None,
                |s| {
                    epochs.push(s.epoch());
                    Ok(true)
                },
            )
            .unwrap()
            .expect("uninterrupted run completes");
        assert_eq!(format!("{reference:?}"), format!("{uninterrupted:?}"));
        assert!(epochs.len() >= 3, "want several boundaries, got {epochs:?}");
        let kill_at = epochs[epochs.len() / 2];
        let mut snap = None;
        let crashed = sim
            .run_stream_resumable(
                &gz,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                None,
                |s| {
                    snap = Some(s.clone());
                    Ok(s.epoch() < kill_at)
                },
            )
            .unwrap();
        assert!(crashed.is_none(), "the kill must abort the run");
        let resumed = sim
            .run_stream_resumable(
                &gz,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                Some(snap.as_ref().unwrap()),
                |_| Ok(true),
            )
            .unwrap()
            .expect("resumed run completes");
        assert_eq!(
            format!("{reference:?}"),
            format!("{resumed:?}"),
            "resume over gz multi-file diverged from the uninterrupted replay"
        );
    }
}

/// The observability acceptance row: attaching a live telemetry
/// recorder must not move a single bit of the replay. For every
/// controller, the streaming and windowed engines replay with
/// `Telemetry` attached at threads {1, 8} × windows {1, 60} s and the
/// `FleetReport` must be bit-identical to the recorder-free run of the
/// same engine — telemetry is strictly observational. On top of the
/// report identity, the counters the recorder collected are
/// cross-checked against the report's own ledger (arrivals,
/// policy rejections, capacity misses), and the windowed engine's
/// counter set must be independent of the thread count: per-window
/// recorder forks merge back in window order, so what was measured
/// cannot depend on who measured it.
#[test]
fn telemetry_recording_preserves_the_determinism_lattice() {
    use faas_freedom::core::fleet::{
        AdmissionPolicy, ControlConfig, ControllerConfig, FleetConfig, FleetSimulator, PidConfig,
        PlacementStrategy, ReplayConfig, RightSizerConfig, StreamTrace, SupplyProcess, Telemetry,
        TraceSource,
    };
    use faas_freedom::core::market::MarketConfig;
    use faas_freedom::core::telemetry::Counter;
    use freedom_experiments::fleet_simulation::synthetic_plans;

    let n_functions = 120;
    let duration = 300.0;
    let lazy = StreamTrace::generate_sharded(
        TraceSource::HeavyTail {
            mean_rps: 0.5,
            alpha: 1.5,
        },
        n_functions,
        duration,
        11,
        8,
    )
    .unwrap();
    let sim = FleetSimulator::new(synthetic_plans(n_functions, 4).unwrap()).unwrap();

    for controller in [
        ControllerConfig::Static,
        ControllerConfig::HeadroomPid(PidConfig::default()),
        ControllerConfig::SurrogateRightSizer(RightSizerConfig::default()),
    ] {
        let config = FleetConfig {
            market: MarketConfig {
                vms_per_family: 3,
                supply: SupplyProcess {
                    step_secs: 15.0,
                    min_fraction: 0.3,
                    seed: 21,
                },
                admission: AdmissionPolicy::Headroom {
                    max_utilization: 0.85,
                },
                ..MarketConfig::default()
            },
            control: ControlConfig {
                cadence_secs: 15.0,
                controller,
            },
            ..FleetConfig::default()
        };

        // Sequential streaming engine: telemetry-off vs telemetry-on.
        let off = sim
            .run_stream(&lazy, PlacementStrategy::IdleAware, &config)
            .unwrap();
        let mut tel = Telemetry::new();
        let (on, stats) = sim
            .run_stream_traced(&lazy, PlacementStrategy::IdleAware, &config, &mut tel)
            .unwrap();
        assert_eq!(
            format!("{off:?}"),
            format!("{on:?}"),
            "{controller:?}: a live recorder moved the streaming report"
        );
        assert_eq!(stats.events, lazy.len());
        // The recorder's ledger must agree with the report's.
        assert_eq!(tel.counter(Counter::Arrivals), on.invocations as u64);
        assert_eq!(
            tel.counter(Counter::PolicyRejected),
            on.policy_rejections as u64
        );
        assert_eq!(
            tel.counter(Counter::CapacityMissed),
            on.capacity_misses as u64
        );
        assert!(tel.counter(Counter::SupplySteps) > 0, "no supply steps");
        assert!(
            tel.counter(Counter::ControllerTicks) > 0,
            "no controller ticks"
        );

        // Windowed engine: telemetry-off vs telemetry-on at every
        // lattice point, plus thread-count independence of the
        // recorded counters.
        for window_secs in [1.0, 60.0] {
            let mut counters_by_threads = Vec::new();
            for threads in [1, 8] {
                let woff = sim
                    .run_stream_windowed(
                        &lazy,
                        PlacementStrategy::IdleAware,
                        &config,
                        threads,
                        window_secs,
                    )
                    .unwrap();
                let mut wtel = Telemetry::new();
                let (won, _) = sim
                    .run_stream_windowed_traced(
                        &lazy,
                        PlacementStrategy::IdleAware,
                        &config,
                        &ReplayConfig::default(),
                        threads,
                        window_secs,
                        &mut wtel,
                    )
                    .unwrap();
                assert_eq!(
                    format!("{woff:?}"),
                    format!("{won:?}"),
                    "{controller:?}: a live recorder moved the windowed report \
                     at {threads} threads, {window_secs}s windows"
                );
                assert_eq!(
                    format!("{off:?}"),
                    format!("{won:?}"),
                    "{controller:?}: traced windowed diverged from sequential \
                     at {threads} threads, {window_secs}s windows"
                );
                assert_eq!(wtel.counter(Counter::Arrivals), won.invocations as u64);
                counters_by_threads.push(
                    Counter::ALL
                        .iter()
                        .map(|&c| (c.name(), wtel.counter(c)))
                        .collect::<Vec<_>>(),
                );
            }
            assert_eq!(
                counters_by_threads[0], counters_by_threads[1],
                "{controller:?}: recorded counters depend on the thread count \
                 at {window_secs}s windows"
            );
        }
    }
}

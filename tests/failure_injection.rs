//! Failure-path integration: OOM kills, timeouts, empty spaces, and the
//! optimizer's behaviour when most of the space is infeasible.

use faas_freedom::optimizer::{OptimizerError, SearchSpace};
use faas_freedom::prelude::*;
use faas_freedom::workloads::InputData;

/// linpack N=7500 needs ~520 MiB: most memory levels fail, and the
/// optimizer must still find the optimum among the survivors.
#[test]
fn optimizer_survives_a_mostly_infeasible_space() {
    let function = FunctionKind::Linpack;
    let input = InputData::Matrix { n: 7500 };
    let table =
        collect_ground_truth(function, &input, SearchSpace::table1().configs(), 3, 11).unwrap();
    // 3 of 6 memory levels fail (128/256/512): half the space.
    let failed = table.points().iter().filter(|p| p.failed).count();
    assert_eq!(failed, 144);

    let mut evaluator = TableEvaluator::new(&table);
    let run = BayesianOptimizer::new(SurrogateKind::Gp, BoConfig::default())
        .optimize(
            &SearchSpace::table1(),
            &mut evaluator,
            Objective::ExecutionTime,
        )
        .unwrap();
    let best = run.best_value().unwrap();
    let truth = table.best_by_time().unwrap().exec_time_secs;
    assert!(best <= truth * 1.2, "best {best} vs truth {truth}");
    assert!(run.sliced_away > 0);
}

/// A timeout is a measurement, not an OOM: it must not trigger slicing.
#[test]
fn timeouts_do_not_slice_the_space() {
    let function = FunctionKind::Transcode;
    let input = function.default_input();
    let config = ResourceConfig::new(InstanceFamily::M6g, 0.25, 2048).unwrap();
    let mut gateway = Gateway::new(3).unwrap();
    gateway.set_timeout(10.0).unwrap(); // everything times out
    gateway
        .deploy(FunctionSpec::new("t", function), config)
        .unwrap();
    let record = gateway.invoke("t", &input).unwrap();
    assert_eq!(record.duration_secs, 10.0);
    assert!(!record.is_success());

    // Ground truth under the same tiny timeout: timed-out points are
    // *not* marked failed (they are valid, terrible measurements).
    let table = collect_ground_truth(function, &input, &[config], 2, 3).unwrap();
    // collect_ground_truth builds its own gateway with the default 600 s
    // timeout, so this configuration simply measures slow — but the
    // OOM-only failure rule is what we check on the 128 MiB level:
    let oom_config = ResourceConfig::new(InstanceFamily::M6g, 0.25, 128).unwrap();
    let oom_table = collect_ground_truth(function, &input, &[oom_config], 2, 3).unwrap();
    assert!(oom_table.points()[0].failed);
    assert!(!table.points()[0].failed);
}

/// An exhausted (fully sliced) search space is an explicit error.
#[test]
fn fully_sliced_space_is_an_error() {
    let mut space = SearchSpace::table1();
    space.slice_failed_memory(4096);
    let table = collect_ground_truth(
        FunctionKind::S3,
        &FunctionKind::S3.default_input(),
        SearchSpace::table1().configs(),
        1,
        1,
    )
    .unwrap();
    let mut evaluator = TableEvaluator::new(&table);
    let err = BayesianOptimizer::new(SurrogateKind::Gp, BoConfig::default())
        .optimize(&space, &mut evaluator, Objective::ExecutionTime)
        .unwrap_err();
    assert_eq!(err, OptimizerError::EmptySearchSpace);
}

/// OOM-killed invocations still bill the burned time — the §5.4 motivation
/// for fewer bad online trials.
#[test]
fn failed_invocations_still_cost_money() {
    let function = FunctionKind::Ocr; // needs ~292 MiB on the default image
    let config = ResourceConfig::new(InstanceFamily::C5, 1.0, 128).unwrap();
    let mut gateway = Gateway::new(17).unwrap();
    gateway
        .deploy(FunctionSpec::new("ocr", function), config)
        .unwrap();
    let record = gateway.invoke("ocr", &function.default_input()).unwrap();
    assert!(!record.is_success());
    assert!(record.cost_usd > 0.0);
    assert!(record.duration_secs > 0.0);
}

/// The gateway keeps serving after failures (no poisoned state).
#[test]
fn gateway_recovers_after_oom() {
    let function = FunctionKind::Linpack;
    let mut gateway = Gateway::new(23).unwrap();
    gateway
        .deploy(
            FunctionSpec::new("lin", function),
            ResourceConfig::new(InstanceFamily::M5, 1.0, 128).unwrap(),
        )
        .unwrap();
    let fail = gateway
        .invoke("lin", &InputData::Matrix { n: 7500 })
        .unwrap();
    assert!(!fail.is_success());
    // Reconfigure with enough memory: the same deployment now succeeds.
    gateway
        .reconfigure(
            "lin",
            ResourceConfig::new(InstanceFamily::M5, 1.0, 1024).unwrap(),
        )
        .unwrap();
    let ok = gateway
        .invoke("lin", &InputData::Matrix { n: 7500 })
        .unwrap();
    assert!(ok.is_success());
    assert_eq!(gateway.cluster().sandbox_count(), 0);
}

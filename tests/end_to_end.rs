//! Cross-crate integration: the full pipeline from ground truth through
//! optimization to user interfaces and provider planning.

use faas_freedom::optimizer::SearchSpace;
use faas_freedom::prelude::*;

/// Ground truth → table-backed BO → near-optimal configuration.
#[test]
fn ground_truth_to_optimum_pipeline() {
    let function = FunctionKind::Ocr;
    let input = function.default_input();
    let space = SearchSpace::table1();
    let table = collect_ground_truth(function, &input, space.configs(), 5, 21).unwrap();
    assert_eq!(table.points().len(), 288);

    let mut evaluator = TableEvaluator::new(&table);
    let run = BayesianOptimizer::new(SurrogateKind::Gp, BoConfig::default())
        .optimize(&space, &mut evaluator, Objective::ExecutionTime)
        .unwrap();
    let found = run.best_value().unwrap();
    let truth = table.best_by_time().unwrap().exec_time_secs;
    assert!(
        found <= truth * 1.15,
        "BO found {found}, optimum {truth} (gap {:.1}%)",
        (found / truth - 1.0) * 100.0
    );
}

/// Live-gateway autotuning improves on a mediocre hand-picked config.
#[test]
fn autotuning_beats_a_naive_deployment() {
    let function = FunctionKind::Facedetect;
    let input = function.default_input();

    let naive = ResourceConfig::new(InstanceFamily::M5a, 0.25, 2048).unwrap();
    let mut gateway = Gateway::new(5).unwrap();
    gateway
        .deploy(FunctionSpec::new("f", function), naive)
        .unwrap();
    let before = gateway.invoke("f", &input).unwrap();

    let outcome = Autotuner::new(SurrogateKind::Gp)
        .tune_offline(function, &input, Objective::ExecutionTime, 5)
        .unwrap();
    let recommended = outcome.recommended().unwrap();
    gateway.reconfigure("f", recommended).unwrap();
    let after = gateway.invoke("f", &input).unwrap();

    assert!(
        after.duration_secs < before.duration_secs / 2.0,
        "expected ≥2x speedup: {} -> {}",
        before.duration_secs,
        after.duration_secs
    );
}

/// The three §6.1 interfaces produce consistent, feasible offers.
#[test]
fn user_interfaces_offer_feasible_tradeoffs() {
    let function = FunctionKind::S3;
    let input = function.default_input();
    let space = SearchSpace::table1();
    let table = collect_ground_truth(function, &input, space.configs(), 5, 9).unwrap();

    // Pareto menu: a small list, every offer feasible on ground truth.
    let menu =
        faas_freedom::core::interfaces::pareto_interface(function, &input, SurrogateKind::Gp, 9)
            .unwrap();
    assert!((1..=10).contains(&menu.len()));
    for option in &menu {
        let point = table.lookup(&option.config).unwrap();
        assert!(
            !point.failed,
            "interface offered an OOM config {}",
            option.config
        );
    }

    // Hierarchical: the traded choice cuts cost vs the time-optimal one.
    let outcome = faas_freedom::core::interfaces::hierarchical_interface(
        function,
        &input,
        Objective::ExecutionTime,
        0.2,
        SurrogateKind::Gp,
        9,
    )
    .unwrap();
    let base = table.lookup(&outcome.primary_best.config).unwrap();
    let traded = table.lookup(&outcome.chosen.config).unwrap();
    assert!(!traded.failed);
    assert!(
        traded.exec_cost_usd <= base.exec_cost_usd * 1.05,
        "trade did not cut cost: {} -> {}",
        base.exec_cost_usd,
        traded.exec_cost_usd
    );
}

/// The §6.2 planner's accepted placements honour the latency guardrail on
/// average and actually save money under spot pricing.
#[test]
fn provider_planner_saves_money_within_guardrail() {
    let function = FunctionKind::Linpack;
    let input = function.default_input();
    let space = SearchSpace::table1();
    let table = collect_ground_truth(function, &input, space.configs(), 5, 13).unwrap();
    let outcome = Autotuner::new(SurrogateKind::Gp)
        .tune_offline(function, &input, Objective::ExecutionTime, 13)
        .unwrap();
    let placements = IdleCapacityPlanner::default()
        .plan(&outcome, &table, &space)
        .unwrap()
        .placements;
    assert_eq!(placements.len(), 6);
    let accepted: Vec<_> = placements.iter().filter(|p| p.accepted).collect();
    assert!(!accepted.is_empty());
    let mean_et = accepted.iter().map(|p| p.norm_exec_time).sum::<f64>() / accepted.len() as f64;
    let mean_cost = accepted.iter().map(|p| p.norm_spot_cost).sum::<f64>() / accepted.len() as f64;
    assert!(mean_et < 1.25, "mean accepted norm ET {mean_et}");
    assert!(mean_cost < 0.5, "mean accepted spot cost {mean_cost}");
}

/// Metering math is consistent between the gateway and the cost model.
#[test]
fn gateway_metering_matches_cost_model() {
    let function = FunctionKind::S3;
    let config = ResourceConfig::new(InstanceFamily::C6g, 0.5, 256).unwrap();
    let mut gateway = Gateway::new(31).unwrap();
    gateway.set_noise_sigma(0.0);
    gateway
        .deploy(FunctionSpec::new("s3", function), config)
        .unwrap();
    let record = gateway.invoke("s3", &function.default_input()).unwrap();
    let expected = CostModel::aws()
        .unwrap()
        .execution_cost(
            config.family(),
            config.cpu_share(),
            config.memory_mib(),
            record.duration_secs,
        )
        .unwrap();
    assert!((record.cost_usd - expected).abs() < 1e-15);
}

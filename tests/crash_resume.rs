//! Crash-resumable replay: a streaming fleet replay killed at an
//! arbitrary epoch boundary and restarted from its persisted snapshot
//! must reproduce the uninterrupted report bit for bit — through a real
//! trip to disk, under fault injection, over a multi-zone market with
//! preemption notices.

use faas_freedom::core::fleet::{
    AdmissionPolicy, BrownoutConfig, ControlConfig, ControllerConfig, FaultPlan, FleetConfig,
    FleetSimulator, PidConfig, PlacementStrategy, RetryPolicy, StreamTrace, SupplyProcess,
    TraceSource, ZoneConfig,
};
use faas_freedom::core::market::MarketConfig;
use faas_freedom::core::snapshot::ReplaySnapshot;
use faas_freedom::prelude::FunctionKind;

fn faulted_config() -> FleetConfig {
    FleetConfig {
        market: MarketConfig {
            vms_per_family: 2,
            supply: SupplyProcess {
                step_secs: 10.0,
                min_fraction: 0.2,
                seed: 21,
            },
            zones: ZoneConfig {
                n_zones: 3,
                notice_secs: 4.0,
                shock: 0.5,
                migration_rebill: 0.5,
            },
            admission: AdmissionPolicy::Headroom {
                max_utilization: 0.9,
            },
            ..MarketConfig::default()
        },
        control: ControlConfig {
            cadence_secs: 15.0,
            controller: ControllerConfig::HeadroomPid(PidConfig::default()),
        },
        faults: FaultPlan {
            seed: 29,
            outage_rate_per_hour: 36.0,
            mean_outage_secs: 25.0,
            notice_drop_fraction: 0.25,
            burst_rate_per_hour: 24.0,
            mean_burst_secs: 12.0,
            burst_severity: 0.5,
            ..FaultPlan::NONE
        },
        ..FleetConfig::default()
    }
}

/// The faulted scenario plus per-invocation transient faults and a full
/// retry policy — backoff, hedging, per-family budgets, brownout — so a
/// kill lands with backoff timers armed and the budget partially drained.
fn stormy_config() -> FleetConfig {
    let mut config = faulted_config();
    config.faults = FaultPlan {
        crash_prob: 0.08,
        abort_prob: 0.06,
        straggler_prob: 0.10,
        straggler_factor: 4.0,
        ..config.faults
    };
    config.retry = RetryPolicy {
        max_attempts: 4,
        backoff_base_secs: 0.5,
        backoff_cap_secs: 8.0,
        hedge_delay_secs: 2.0,
        budget_per_sec: 1.0,
        budget_burst: 4.0,
        brownout: Some(BrownoutConfig {
            enter_pressure: 0.2,
            exit_pressure: 0.05,
            utilization_ceiling: 0.7,
        }),
        ..RetryPolicy::DEFAULT
    };
    config
}

fn hot_stream() -> StreamTrace {
    StreamTrace::generate(
        TraceSource::Bursty {
            calm_rps: 1.0,
            burst_rps: 6.0,
            mean_calm_secs: 25.0,
            mean_burst_secs: 12.0,
        },
        FunctionKind::ALL.len(),
        240.0,
        11,
    )
    .unwrap()
}

/// Kill the replay at a pseudo-randomly chosen epoch (seeded, so the
/// test replays identically), persist the snapshot the way a real
/// supervisor would — bytes to a file, re-read on restart — and resume.
/// The resumed report must match the uninterrupted run bit for bit.
#[test]
fn kill_at_random_epoch_resumes_bit_identically() {
    let plans =
        freedom_experiments::fleet_simulation::synthetic_plans(FunctionKind::ALL.len(), 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();
    let config = faulted_config();
    let lazy = hot_stream();
    let snapshot_secs = 20.0;

    let reference = sim
        .run_stream(&lazy, PlacementStrategy::IdleAware, &config)
        .unwrap();
    assert!(
        reference.notified > 0 && reference.migrated + reference.drained > 0,
        "the scenario must exercise the failure domain: {reference:?}"
    );

    // Count the epochs once so the kill points can span the whole run.
    let mut epochs: Vec<u64> = Vec::new();
    let full = sim
        .run_stream_resumable(
            &lazy,
            PlacementStrategy::IdleAware,
            &config,
            snapshot_secs,
            None,
            |s| {
                epochs.push(s.epoch());
                Ok(true)
            },
        )
        .unwrap()
        .expect("uninterrupted run completes");
    assert_eq!(format!("{reference:?}"), format!("{full:?}"));
    assert!(epochs.len() >= 5, "want several boundaries, got {epochs:?}");

    // Three seeded pseudo-random kill epochs plus both edges.
    let mut lcg: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut kill_epochs = vec![epochs[0], *epochs.last().unwrap()];
    for _ in 0..3 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        kill_epochs.push(epochs[(lcg >> 33) as usize % epochs.len()]);
    }

    let dir = std::env::temp_dir().join(format!("freedom-crash-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (i, &kill_at) in kill_epochs.iter().enumerate() {
        // The "crashing" process: persists every snapshot, then dies at
        // the chosen boundary (the callback's Ok(false) is the kill).
        let path = dir.join(format!("kill-{i}.snap"));
        let crashed = sim
            .run_stream_resumable(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                None,
                |s| {
                    s.write_to(&path)?;
                    Ok(s.epoch() < kill_at)
                },
            )
            .unwrap();
        assert!(
            crashed.is_none(),
            "epoch {kill_at}: kill must abort the run"
        );

        // The restarted process: reads the snapshot back from disk and
        // picks up where the dead one stopped.
        let snap = ReplaySnapshot::read_from(&path).unwrap();
        assert_eq!(snap.epoch(), kill_at);
        assert_eq!(snap.window_nanos(), 20_000_000_000);
        let resumed = sim
            .run_stream_resumable(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                Some(&snap),
                |_| Ok(true),
            )
            .unwrap()
            .expect("resumed run completes");
        assert_eq!(
            format!("{reference:?}"),
            format!("{resumed:?}"),
            "resume from epoch {kill_at} diverged from the uninterrupted replay"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot is only valid for the replay that produced it: a different
/// controller, fault seed, or snapshot cadence must be rejected up
/// front, and a truncated snapshot file must fail to decode instead of
/// resuming a corrupt position.
#[test]
fn foreign_and_corrupt_snapshots_are_rejected() {
    let plans =
        freedom_experiments::fleet_simulation::synthetic_plans(FunctionKind::ALL.len(), 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();
    let config = faulted_config();
    let lazy = hot_stream();

    let mut first: Option<ReplaySnapshot> = None;
    sim.run_stream_resumable(
        &lazy,
        PlacementStrategy::IdleAware,
        &config,
        20.0,
        None,
        |s| {
            first = Some(s.clone());
            Ok(false)
        },
    )
    .unwrap();
    let snap = first.expect("at least one boundary");

    let reseeded = FleetConfig {
        faults: FaultPlan {
            seed: config.faults.seed + 1,
            ..config.faults
        },
        ..config
    };
    assert!(
        sim.run_stream_resumable(
            &lazy,
            PlacementStrategy::IdleAware,
            &reseeded,
            20.0,
            Some(&snap),
            |_| Ok(true),
        )
        .is_err(),
        "a different fault seed must invalidate the snapshot"
    );
    assert!(
        sim.run_stream_resumable(
            &lazy,
            PlacementStrategy::IdleAware,
            &config,
            40.0,
            Some(&snap),
            |_| Ok(true),
        )
        .is_err(),
        "a different snapshot cadence must invalidate the snapshot"
    );

    let bytes = snap.to_bytes();
    assert!(ReplaySnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    assert!(ReplaySnapshot::from_bytes(&bytes[1..]).is_err());
    // Single-bit payload corruption at seeded pseudo-random offsets must
    // fail the integrity checksum, never decode into a skewed resume.
    let mut lcg: u64 = 0xa076_1d64_78bd_642f;
    for _ in 0..32 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let byte = (lcg >> 33) as usize % bytes.len();
        let bit = (lcg >> 29) as u8 % 8;
        let mut flipped = bytes.clone();
        flipped[byte] ^= 1 << bit;
        assert!(
            ReplaySnapshot::from_bytes(&flipped).is_err(),
            "bit flip at byte {byte} bit {bit} decoded anyway"
        );
    }
    let roundtrip = ReplaySnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(roundtrip.epoch(), snap.epoch());
    assert_eq!(roundtrip.fingerprint(), snap.fingerprint());
}

/// Kill the replay in the middle of a retry storm — pending backoff
/// timers in the heap, hedges armed against stragglers, the per-family
/// budget partially drained, brownout toggling — and resume from disk.
/// The carried retry state must survive the round-trip: the resumed
/// report matches the uninterrupted one bit for bit at every boundary.
#[test]
fn kill_mid_retry_storm_resumes_bit_identically() {
    let plans =
        freedom_experiments::fleet_simulation::synthetic_plans(FunctionKind::ALL.len(), 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();
    let config = stormy_config();
    let lazy = hot_stream();
    let snapshot_secs = 20.0;

    let reference = sim
        .run_stream(&lazy, PlacementStrategy::IdleAware, &config)
        .unwrap();
    assert!(
        reference.retried > 0,
        "the storm must actually retry: {reference:?}"
    );
    assert!(
        reference.retried + reference.dead_lettered > 4,
        "want a real storm, got {reference:?}"
    );

    let mut epochs: Vec<u64> = Vec::new();
    let full = sim
        .run_stream_resumable(
            &lazy,
            PlacementStrategy::IdleAware,
            &config,
            snapshot_secs,
            None,
            |s| {
                epochs.push(s.epoch());
                Ok(true)
            },
        )
        .unwrap()
        .expect("uninterrupted run completes");
    assert_eq!(format!("{reference:?}"), format!("{full:?}"));
    assert!(epochs.len() >= 5, "want several boundaries, got {epochs:?}");

    // Kill at every boundary: a retry heap or budget bug that only
    // bites at one particular epoch still fails the sweep.
    let dir = std::env::temp_dir().join(format!("freedom-retry-storm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for &kill_at in &epochs {
        let path = dir.join(format!("storm-{kill_at}.snap"));
        let crashed = sim
            .run_stream_resumable(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                None,
                |s| {
                    s.write_to(&path)?;
                    Ok(s.epoch() < kill_at)
                },
            )
            .unwrap();
        assert!(crashed.is_none(), "epoch {kill_at}: kill must abort");

        let snap = ReplaySnapshot::read_from(&path).unwrap();
        let resumed = sim
            .run_stream_resumable(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                Some(&snap),
                |_| Ok(true),
            )
            .unwrap()
            .expect("resumed run completes");
        assert_eq!(
            format!("{reference:?}"),
            format!("{resumed:?}"),
            "resume from epoch {kill_at} diverged mid-retry-storm"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! Crash-resumable replay: a streaming fleet replay killed at an
//! arbitrary epoch boundary and restarted from its persisted snapshot
//! must reproduce the uninterrupted report bit for bit — through a real
//! trip to disk, under fault injection, over a multi-zone market with
//! preemption notices.

use faas_freedom::core::fleet::{
    AdmissionPolicy, ControlConfig, ControllerConfig, FaultPlan, FleetConfig, FleetSimulator,
    PidConfig, PlacementStrategy, StreamTrace, SupplyProcess, TraceSource, ZoneConfig,
};
use faas_freedom::core::market::MarketConfig;
use faas_freedom::core::snapshot::ReplaySnapshot;
use faas_freedom::prelude::FunctionKind;

fn faulted_config() -> FleetConfig {
    FleetConfig {
        market: MarketConfig {
            vms_per_family: 2,
            supply: SupplyProcess {
                step_secs: 10.0,
                min_fraction: 0.2,
                seed: 21,
            },
            zones: ZoneConfig {
                n_zones: 3,
                notice_secs: 4.0,
                shock: 0.5,
                migration_rebill: 0.5,
            },
            admission: AdmissionPolicy::Headroom {
                max_utilization: 0.9,
            },
            ..MarketConfig::default()
        },
        control: ControlConfig {
            cadence_secs: 15.0,
            controller: ControllerConfig::HeadroomPid(PidConfig::default()),
        },
        faults: FaultPlan {
            seed: 29,
            outage_rate_per_hour: 36.0,
            mean_outage_secs: 25.0,
            notice_drop_fraction: 0.25,
            burst_rate_per_hour: 24.0,
            mean_burst_secs: 12.0,
            burst_severity: 0.5,
        },
        ..FleetConfig::default()
    }
}

fn hot_stream() -> StreamTrace {
    StreamTrace::generate(
        TraceSource::Bursty {
            calm_rps: 1.0,
            burst_rps: 6.0,
            mean_calm_secs: 25.0,
            mean_burst_secs: 12.0,
        },
        FunctionKind::ALL.len(),
        240.0,
        11,
    )
    .unwrap()
}

/// Kill the replay at a pseudo-randomly chosen epoch (seeded, so the
/// test replays identically), persist the snapshot the way a real
/// supervisor would — bytes to a file, re-read on restart — and resume.
/// The resumed report must match the uninterrupted run bit for bit.
#[test]
fn kill_at_random_epoch_resumes_bit_identically() {
    let plans =
        freedom_experiments::fleet_simulation::synthetic_plans(FunctionKind::ALL.len(), 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();
    let config = faulted_config();
    let lazy = hot_stream();
    let snapshot_secs = 20.0;

    let reference = sim
        .run_stream(&lazy, PlacementStrategy::IdleAware, &config)
        .unwrap();
    assert!(
        reference.notified > 0 && reference.migrated + reference.drained > 0,
        "the scenario must exercise the failure domain: {reference:?}"
    );

    // Count the epochs once so the kill points can span the whole run.
    let mut epochs: Vec<u64> = Vec::new();
    let full = sim
        .run_stream_resumable(
            &lazy,
            PlacementStrategy::IdleAware,
            &config,
            snapshot_secs,
            None,
            |s| {
                epochs.push(s.epoch());
                Ok(true)
            },
        )
        .unwrap()
        .expect("uninterrupted run completes");
    assert_eq!(format!("{reference:?}"), format!("{full:?}"));
    assert!(epochs.len() >= 5, "want several boundaries, got {epochs:?}");

    // Three seeded pseudo-random kill epochs plus both edges.
    let mut lcg: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut kill_epochs = vec![epochs[0], *epochs.last().unwrap()];
    for _ in 0..3 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        kill_epochs.push(epochs[(lcg >> 33) as usize % epochs.len()]);
    }

    let dir = std::env::temp_dir().join(format!("freedom-crash-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (i, &kill_at) in kill_epochs.iter().enumerate() {
        // The "crashing" process: persists every snapshot, then dies at
        // the chosen boundary (the callback's Ok(false) is the kill).
        let path = dir.join(format!("kill-{i}.snap"));
        let crashed = sim
            .run_stream_resumable(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                None,
                |s| {
                    s.write_to(&path)?;
                    Ok(s.epoch() < kill_at)
                },
            )
            .unwrap();
        assert!(
            crashed.is_none(),
            "epoch {kill_at}: kill must abort the run"
        );

        // The restarted process: reads the snapshot back from disk and
        // picks up where the dead one stopped.
        let snap = ReplaySnapshot::read_from(&path).unwrap();
        assert_eq!(snap.epoch(), kill_at);
        assert_eq!(snap.window_nanos(), 20_000_000_000);
        let resumed = sim
            .run_stream_resumable(
                &lazy,
                PlacementStrategy::IdleAware,
                &config,
                snapshot_secs,
                Some(&snap),
                |_| Ok(true),
            )
            .unwrap()
            .expect("resumed run completes");
        assert_eq!(
            format!("{reference:?}"),
            format!("{resumed:?}"),
            "resume from epoch {kill_at} diverged from the uninterrupted replay"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot is only valid for the replay that produced it: a different
/// controller, fault seed, or snapshot cadence must be rejected up
/// front, and a truncated snapshot file must fail to decode instead of
/// resuming a corrupt position.
#[test]
fn foreign_and_corrupt_snapshots_are_rejected() {
    let plans =
        freedom_experiments::fleet_simulation::synthetic_plans(FunctionKind::ALL.len(), 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();
    let config = faulted_config();
    let lazy = hot_stream();

    let mut first: Option<ReplaySnapshot> = None;
    sim.run_stream_resumable(
        &lazy,
        PlacementStrategy::IdleAware,
        &config,
        20.0,
        None,
        |s| {
            first = Some(s.clone());
            Ok(false)
        },
    )
    .unwrap();
    let snap = first.expect("at least one boundary");

    let reseeded = FleetConfig {
        faults: FaultPlan {
            seed: config.faults.seed + 1,
            ..config.faults
        },
        ..config
    };
    assert!(
        sim.run_stream_resumable(
            &lazy,
            PlacementStrategy::IdleAware,
            &reseeded,
            20.0,
            Some(&snap),
            |_| Ok(true),
        )
        .is_err(),
        "a different fault seed must invalidate the snapshot"
    );
    assert!(
        sim.run_stream_resumable(
            &lazy,
            PlacementStrategy::IdleAware,
            &config,
            40.0,
            Some(&snap),
            |_| Ok(true),
        )
        .is_err(),
        "a different snapshot cadence must invalidate the snapshot"
    );

    let bytes = snap.to_bytes();
    assert!(ReplaySnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    assert!(ReplaySnapshot::from_bytes(&bytes[1..]).is_err());
    let roundtrip = ReplaySnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(roundtrip.epoch(), snap.epoch());
    assert_eq!(roundtrip.fingerprint(), snap.fingerprint());
}

//! Integration tests that pin the paper's headline claims, end to end.
//!
//! These are the repository's "reproduction contract": if a refactor
//! breaks one of these, the corresponding figure no longer matches the
//! paper's shape. Tests use reduced repetitions but the full 288-point
//! space.

use faas_freedom::core::strategies::{best_within_strategy, AllocationStrategy};
use faas_freedom::optimizer::SearchSpace;
use faas_freedom::prelude::*;

fn table_for(function: FunctionKind, seed: u64) -> PerfTable {
    collect_ground_truth(
        function,
        &function.default_input(),
        SearchSpace::table1().configs(),
        3,
        seed,
    )
    .unwrap()
}

/// §2 / Figure 1: "selecting the wrong configuration can lead up to 14.9×
/// worse execution time and 5.6× worse execution cost".
#[test]
fn wrong_configurations_cost_an_order_of_magnitude() {
    let mut worst_time: f64 = 0.0;
    let mut worst_cost: f64 = 0.0;
    for function in FunctionKind::ALL {
        let table = table_for(function, 1);
        let times = table.normalized_times();
        let costs = table.normalized_costs();
        worst_time = worst_time.max(times.iter().copied().fold(0.0, f64::max));
        worst_cost = worst_cost.max(costs.iter().copied().fold(0.0, f64::max));
    }
    assert!(worst_time > 8.0, "worst ET ratio only {worst_time}");
    assert!(worst_cost > 4.0, "worst EC ratio only {worst_cost}");
}

/// §4.1 / Figure 3a: instance-type choice alone buys 5-40% execution time
/// for the CPU-bound functions.
#[test]
fn instance_type_choice_buys_5_to_40_percent_latency() {
    for function in [
        FunctionKind::Transcode,
        FunctionKind::Faceblur,
        FunctionKind::Facedetect,
        FunctionKind::Ocr,
        FunctionKind::Linpack,
    ] {
        let input = function.default_input();
        let decoupled =
            best_within_strategy(AllocationStrategy::Decoupled, function, &input, 3, 2).unwrap();
        let m5_only =
            best_within_strategy(AllocationStrategy::DecoupledM5, function, &input, 3, 2).unwrap();
        let gain = m5_only.best_exec_time_secs / decoupled.best_exec_time_secs;
        assert!(
            (1.04..=1.45).contains(&gain),
            "{function}: family gain {gain} outside the paper band"
        );
    }
}

/// §4.1 / Figure 3b: decoupling CPU from memory buys 10-50% execution cost
/// against proportional allocation.
#[test]
fn decoupling_buys_10_to_50_percent_cost() {
    let mut in_band = 0;
    for function in FunctionKind::ALL {
        let input = function.default_input();
        let prop =
            best_within_strategy(AllocationStrategy::PropCpu, function, &input, 3, 3).unwrap();
        let decoupled_m5 =
            best_within_strategy(AllocationStrategy::DecoupledM5, function, &input, 3, 3).unwrap();
        let gain = prop.best_exec_cost_usd / decoupled_m5.best_exec_cost_usd;
        assert!(
            gain >= 1.0 - 1e-9,
            "{function}: decoupling should never lose"
        );
        if (1.08..=1.60).contains(&gain) {
            in_band += 1;
        }
    }
    assert!(
        in_band >= 3,
        "only {in_band}/6 functions in the 10-50% band"
    );
}

/// §5.2 / Figures 4-5: BO with GP reaches within ~10% of the best
/// execution time inside 20 trials (median over repetitions).
#[test]
fn bo_gp_converges_within_20_trials() {
    for function in [FunctionKind::Faceblur, FunctionKind::S3] {
        let table = table_for(function, 4);
        let truth = table.best_by_time().unwrap().exec_time_secs;
        let mut gaps = Vec::new();
        for rep in 0..5 {
            let mut evaluator = TableEvaluator::new(&table);
            let run = BayesianOptimizer::new(
                SurrogateKind::Gp,
                BoConfig {
                    seed: 100 + rep,
                    ..BoConfig::default()
                },
            )
            .optimize(
                &SearchSpace::table1(),
                &mut evaluator,
                Objective::ExecutionTime,
            )
            .unwrap();
            gaps.push(run.best_value().unwrap() / truth);
        }
        gaps.sort_by(f64::total_cmp);
        let median = gaps[gaps.len() / 2];
        assert!(median <= 1.10, "{function}: median gap {median}");
    }
}

/// §5.1: OOM failures slice the search space instead of poisoning the
/// model — and the sliced region is never revisited.
#[test]
fn oom_slicing_never_revisits_failed_memory() {
    let function = FunctionKind::Transcode; // OOMs below ~256 MiB
    let table = table_for(function, 5);
    let mut evaluator = TableEvaluator::new(&table);
    let run = BayesianOptimizer::new(SurrogateKind::Gp, BoConfig::default())
        .optimize(
            &SearchSpace::table1(),
            &mut evaluator,
            Objective::ExecutionTime,
        )
        .unwrap();
    let mut watermark = 0u32;
    for trial in &run.trials {
        assert!(
            watermark == 0 || trial.config.memory_mib() > watermark,
            "revisited memory {} after watermark {watermark}",
            trial.config.memory_mib()
        );
        if trial.failed {
            watermark = watermark.max(trial.config.memory_mib());
        }
    }
    assert!(run.sliced_away > 0, "transcode must trigger slicing");
}

/// §5.3 / Figure 7: a configuration tuned on the default input stays close
/// to the per-input optimum on other inputs.
#[test]
fn good_configurations_transfer_across_inputs() {
    let function = FunctionKind::Faceblur;
    let default_table = table_for(function, 6);
    let mut evaluator = TableEvaluator::new(&default_table);
    let run = BayesianOptimizer::new(SurrogateKind::Gp, BoConfig::default())
        .optimize(
            &SearchSpace::table1(),
            &mut evaluator,
            Objective::ExecutionTime,
        )
        .unwrap();
    let generic = run.best_feasible().unwrap().config;

    for input in function.inputs() {
        let table =
            collect_ground_truth(function, &input, SearchSpace::table1().configs(), 3, 7).unwrap();
        let ideal = table.best_by_time().unwrap().exec_time_secs;
        let at_generic = table.lookup(&generic).unwrap();
        assert!(!at_generic.failed, "{}: generic config OOMs", input.id());
        let gap = at_generic.exec_time_secs / ideal;
        assert!(gap <= 1.25, "{}: generic gap {gap}", input.id());
    }
}

/// §6.2 / Table 3: the network-bound function can move to any family; the
/// arch-bound codec cannot (within 5%).
#[test]
fn alternative_family_structure_matches_the_paper() {
    use faas_freedom::core::provider::alternative_families_within;
    let s3 = table_for(FunctionKind::S3, 8);
    let transcode = table_for(FunctionKind::Transcode, 8);
    let s3_alts = alternative_families_within(&s3, Objective::ExecutionTime, 0.10).unwrap();
    let tc_alts = alternative_families_within(&transcode, Objective::ExecutionTime, 0.05).unwrap();
    assert!(s3_alts >= 4, "s3 alternatives {s3_alts}");
    assert!(tc_alts <= 2, "transcode alternatives {tc_alts}");
}

//! Pins the replay hot loop's allocation discipline: once the
//! thread-local pools (timer wheel, window drain buffer) are warm,
//! replaying more events must not allocate more. Every per-event path —
//! CSV row parse into the scratch key, wheel push/pop, ledger
//! place/release, metering pushes into exact-capacity vectors — is
//! allocation-free; only per-run and per-window structures (context,
//! metering headers, the carry itself) allocate, and their *count* is
//! independent of the event count.
//!
//! The guard compares whole-run allocation counts between a small and an
//! 8× larger trace over the same horizon (same ticks, same supply
//! steps): the marginal allocations per added event must be zero, up to
//! a small slack for amortized growth of event-count-logarithmic
//! structures (e.g. the adjustments list).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use faas_freedom::core::fleet::{FleetConfig, FleetSimulator, PlacementStrategy, StreamTrace};
use freedom_experiments::fleet_simulation::synthetic_plans;

/// Counts every allocation event (alloc, alloc_zeroed, realloc) without
/// changing behavior. Counting events rather than bytes is deliberate:
/// a `with_capacity` reserve is one event regardless of size, so the
/// count isolates *how often* the replay touches the allocator.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A CSV trace with `per_minute` arrivals per function per minute over a
/// fixed 20-minute horizon: scaling `per_minute` scales the event count
/// while keeping the control-tick and supply-step schedules identical.
fn csv_trace(per_minute: u32) -> StreamTrace {
    let mut s = String::from("app,func,minute,count\n");
    for minute in 0..20 {
        for f in 0..12 {
            writeln!(s, "app{f},fn{f},{minute},{per_minute}").unwrap();
        }
    }
    StreamTrace::from_csv(&s).unwrap()
}

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Allocation growth must be bounded by pool warm-up and logarithmic
/// amortized growth, never by the event count. 64 events of slack
/// absorbs vector-doubling tails; the small/large runs differ by
/// thousands of events.
const SLACK: u64 = 64;

#[test]
fn steady_state_replay_allocations_are_event_count_independent() {
    let small = csv_trace(2);
    let large = csv_trace(16);
    assert!(
        large.len() >= 8 * small.len(),
        "{} vs {}",
        large.len(),
        small.len()
    );
    let plans = synthetic_plans(12, 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();
    let config = FleetConfig::default();
    let run = |trace: &StreamTrace| {
        sim.run_stream(trace, PlacementStrategy::IdleAware, &config)
            .unwrap()
    };

    // Warm-up on the large trace: grows the thread-local wheel pool and
    // drain buffer to their high-water capacities.
    let warm = run(&large);

    let before_small = alloc_events();
    let small_report = run(&small);
    let small_cost = alloc_events() - before_small;

    let before_large = alloc_events();
    let large_report = run(&large);
    let large_cost = alloc_events() - before_large;

    // The replays must have actually replayed (and differ in scale).
    assert_eq!(warm.invocations, large_report.invocations);
    assert!(large_report.invocations >= 8 * small_report.invocations);

    assert!(
        large_cost <= small_cost + SLACK,
        "replaying {} events allocated {} times, but {} events allocated \
         {} times: the event loop is allocating per event",
        large_report.invocations,
        large_cost,
        small_report.invocations,
        small_cost,
    );

    // The windowed engine reuses the same pools across windows: two
    // identical warm runs must allocate the same number of times (the
    // work is deterministic, so any drift would mean a pool failed to
    // retain capacity).
    let windowed = |trace: &StreamTrace| {
        sim.run_stream_windowed(trace, PlacementStrategy::IdleAware, &config, 1, 60.0)
            .unwrap()
    };
    let warm_windowed = windowed(&large);
    let before_first = alloc_events();
    let first = windowed(&large);
    let first_cost = alloc_events() - before_first;
    let before_second = alloc_events();
    let second = windowed(&large);
    let second_cost = alloc_events() - before_second;
    assert_eq!(format!("{warm_windowed:?}"), format!("{first:?}"));
    assert_eq!(format!("{first:?}"), format!("{second:?}"));
    assert!(
        second_cost <= first_cost + SLACK / 8,
        "identical warm windowed runs allocated {first_cost} then \
         {second_cost} times: window scratch is not being reused"
    );
}

/// The telemetry layer's zero-allocation claim, enforced with a *live*
/// recorder: counters, histograms, sampled wall timing, and the span
/// ring are all preallocated at `Telemetry` construction, so a traced
/// replay's steady-state allocation count must be as event-count
/// independent as the recorder-free one. The recorders are built
/// outside the measured region; everything the hot loop touches —
/// `add`, `observe`, `span_sim`, `span_wall`, the ring overwrite path —
/// must stay off the allocator entirely.
#[test]
fn telemetry_recording_allocates_nothing_in_steady_state() {
    use faas_freedom::core::fleet::Telemetry;

    let small = csv_trace(2);
    let large = csv_trace(16);
    let plans = synthetic_plans(12, 4).unwrap();
    let sim = FleetSimulator::new(plans).unwrap();
    let config = FleetConfig::default();
    let run = |trace: &StreamTrace, tel: &mut Telemetry| {
        sim.run_stream_traced(trace, PlacementStrategy::IdleAware, &config, tel)
            .unwrap()
            .0
    };

    // Preallocate every recorder up front: the ring is sized to
    // overflow on the large trace, so the overwrite-oldest path is
    // inside the measured region too.
    let mut warm_tel = Telemetry::with_capacity(8);
    let mut small_tel = Telemetry::with_capacity(8);
    let mut large_tel = Telemetry::with_capacity(8);

    let warm = run(&large, &mut warm_tel);

    let before_small = alloc_events();
    let small_report = run(&small, &mut small_tel);
    let small_cost = alloc_events() - before_small;

    let before_large = alloc_events();
    let large_report = run(&large, &mut large_tel);
    let large_cost = alloc_events() - before_large;

    assert_eq!(warm.invocations, large_report.invocations);
    assert!(large_report.invocations >= 8 * small_report.invocations);
    // The recorder saw the replay, and the ring really did wrap.
    assert_eq!(
        large_tel.counter(faas_freedom::core::telemetry::Counter::Arrivals),
        large_report.invocations as u64
    );
    assert!(
        large_tel.dropped_spans() > 0,
        "ring sized to overflow must overflow"
    );

    assert!(
        large_cost <= small_cost + SLACK,
        "with a live recorder, replaying {} events allocated {} times, \
         but {} events allocated {} times: telemetry is allocating per \
         event",
        large_report.invocations,
        large_cost,
        small_report.invocations,
        small_cost,
    );
}

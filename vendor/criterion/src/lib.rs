//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion`], benchmark groups, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each bench closure is warmed up once, then timed
//! sample by sample until either the group's sample count or the
//! measurement-time budget is exhausted. Results are printed as a table
//! and, when the `BENCH_JSON` environment variable names a file, appended
//! to it as JSON lines (`{"bench": ..., "mean_ns": ..., "min_ns": ...,
//! "samples": ...}`), which CI turns into the `BENCH_pr.json` artifact.
//! Setting `BENCH_QUICK=1` — or passing `--fast` on the bench command
//! line (`cargo bench --benches -- --fast`) — caps every bench at two
//! samples for smoke runs; benches can query the mode via [`is_quick`]
//! to shrink their own fixture sweeps to match.

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Number of measured samples.
    pub samples: u64,
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    sample_size: u64,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(5),
            sample_size: 50,
            results: Vec::new(),
        }
    }
}

/// True when the harness runs as a smoke test: `BENCH_QUICK=1` in the
/// environment or `--fast` on the command line. Samples are capped at
/// two per bench; benches with their own fixture sweeps should consult
/// this to shrink them accordingly.
pub fn is_quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        || std::env::args().any(|a| a == "--fast")
}

impl Criterion {
    /// Sets the per-bench time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Upstream parses CLI filters here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            parent: self,
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.run_one(id.into(), sample_size, measurement_time, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        sample_size: u64,
        measurement_time: Duration,
        mut f: F,
    ) {
        let sample_size = if is_quick() { 2 } else { sample_size.max(1) };
        let mut bencher = Bencher {
            sample_size,
            measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let samples = bencher.samples;
        if samples.is_empty() {
            return;
        }
        let total: Duration = samples.iter().sum();
        let result = BenchResult {
            id,
            mean: total / samples.len() as u32,
            min: samples.iter().min().copied().unwrap_or_default(),
            samples: samples.len() as u64,
        };
        println!(
            "bench {:<44} mean {:>12?}  min {:>12?}  ({} samples)",
            result.id, result.mean, result.min, result.samples
        );
        self.results.push(result);
    }

    /// Writes collected results to `$BENCH_JSON` (JSON lines), if set.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            eprintln!("criterion shim: cannot open {path}");
            return;
        };
        for r in &self.results {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}",
                r.id.replace('"', "'"),
                r.mean.as_nanos(),
                r.min.as_nanos(),
                r.samples
            );
        }
    }
}

/// A named group of benches sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    measurement_time: Duration,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Sets the time budget for subsequent benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benches one function under `group/name`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.parent.run_one(id, sample_size, measurement_time, f);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each bench closure; runs and times the workload.
pub struct Bencher {
    sample_size: u64,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, one call per sample, until the sample count or the time
    /// budget runs out.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.samples.clear();
        black_box(f()); // warm-up, untimed
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// Declares a group runner function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.finalize();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .bench_function("work", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        assert_eq!(c.results.len(), 1);
        let r = &c.results[0];
        assert_eq!(r.id, "g/work");
        assert!(r.samples >= 1 && r.samples <= 3);
        assert!(r.min <= r.mean);
    }

    #[test]
    fn top_level_bench_function_works() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("solo", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results[0].id, "solo");
    }
}

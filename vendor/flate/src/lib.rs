//! Dependency-free streaming gzip/DEFLATE inflater.
//!
//! The workspace builds offline, so instead of `flate2` this crate carries a
//! small RFC 1951/1952 implementation tuned for the trace-ingestion path:
//!
//! * [`GzReader`] — a pull-based streaming decoder. The caller supplies a
//!   byte source callback; `read_chunk` appends decompressed bytes to a
//!   caller-owned buffer in bounded increments, so decompression can overlap
//!   parsing without ever materializing the whole file.
//! * [`gunzip`] — one-shot convenience wrapper over `GzReader`.
//! * [`gzip_compress`] — a minimal writer (stored and fixed-Huffman literal
//!   blocks) so tests, benches and the week-replay tooling can synthesize
//!   valid gzip members without an external compressor.
//!
//! Every decode error is typed ([`InflateError`]) so callers can attribute
//! truncation, CRC mismatches and corrupt blocks precisely.

#![forbid(unsafe_code)]

use std::fmt;

/// Magic bytes that open every gzip member.
pub const GZIP_MAGIC: [u8; 2] = [0x1f, 0x8b];

/// True when `data` starts with the gzip member magic.
pub fn is_gzip(data: &[u8]) -> bool {
    data.len() >= 2 && data[0] == GZIP_MAGIC[0] && data[1] == GZIP_MAGIC[1]
}

/// Typed decode failures; `Display` renders a stable one-line message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InflateError {
    /// The member does not start with `1f 8b`.
    BadMagic { found: [u8; 2] },
    /// The compression method byte is not 8 (deflate).
    UnsupportedMethod(u8),
    /// Reserved FLG bits are set.
    ReservedFlags(u8),
    /// The stream ended in the middle of the named structure.
    Truncated { context: &'static str },
    /// A deflate block is internally inconsistent.
    Corrupt { detail: &'static str },
    /// The member trailer CRC32 does not match the decompressed bytes.
    BadCrc { expected: u32, found: u32 },
    /// The member trailer ISIZE does not match the decompressed length.
    BadLength { expected: u32, found: u32 },
    /// The byte source callback failed.
    Source(String),
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InflateError::BadMagic { found } => write!(
                f,
                "bad gzip member header: expected magic 1f 8b, found {:02x} {:02x}",
                found[0], found[1]
            ),
            InflateError::UnsupportedMethod(m) => {
                write!(f, "unsupported gzip compression method {m} (want 8)")
            }
            InflateError::ReservedFlags(flg) => {
                write!(f, "gzip header sets reserved FLG bits ({flg:#04x})")
            }
            InflateError::Truncated { context } => {
                write!(f, "truncated gzip stream (inside {context})")
            }
            InflateError::Corrupt { detail } => write!(f, "corrupt deflate block: {detail}"),
            InflateError::BadCrc { expected, found } => write!(
                f,
                "gzip CRC mismatch: trailer says {expected:#010x}, data hashes to {found:#010x}"
            ),
            InflateError::BadLength { expected, found } => write!(
                f,
                "gzip length mismatch: trailer says {expected} bytes, decoded {found}"
            ),
            InflateError::Source(msg) => write!(f, "gzip byte source failed: {msg}"),
        }
    }
}

impl std::error::Error for InflateError {}

const WINDOW_SIZE: usize = 32 * 1024;
const FAST_BITS: u32 = 9;
const FAST_SIZE: usize = 1 << FAST_BITS;
const MAX_CODE_LEN: usize = 15;

/// Length codes 257..=285: base lengths and extra-bit counts (RFC 1951 §3.2.5).
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Distance codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which code-length-code lengths are stored in a dynamic block.
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Slice-by-8 CRC32 tables: `TABLES[0]` is the classic byte-at-a-time
/// table, `TABLES[k][n]` advances byte `n` through `k` further zero
/// bytes. Computed once per process and shared by every reader — the
/// streaming replay hashes hundreds of megabytes per trace, so the CRC
/// runs eight bytes per step instead of one.
fn crc32_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (n, slot) in t[0].iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        for k in 1..8 {
            for n in 0..256 {
                t[k][n] = t[0][(t[k - 1][n] & 0xff) as usize] ^ (t[k - 1][n] >> 8);
            }
        }
        t
    })
}

/// Folds `bytes` into `crc` eight bytes at a time (slice-by-8), falling
/// back to the byte table for the tail. Bit-identical to the classic
/// byte loop.
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    let t = crc32_tables();
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    crc
}

fn reverse_bits(code: u32, len: u32) -> u32 {
    let mut out = 0u32;
    for i in 0..len {
        out |= ((code >> i) & 1) << (len - 1 - i);
    }
    out
}

/// Canonical Huffman decoding table: a single-level fast lookup for codes of
/// at most [`FAST_BITS`] bits plus the counts/symbols arrays for the
/// bit-serial fallback (the `puff` algorithm).
struct Huff {
    counts: [u16; MAX_CODE_LEN + 1],
    symbols: Vec<u16>,
    /// `fast[low bits of stream] = (code_len << 12) | symbol`, 0 = miss.
    fast: Vec<u16>,
}

impl Huff {
    /// Build from per-symbol code lengths (0 = unused). Rejects
    /// over-subscribed codes; incomplete codes are allowed and surface as
    /// "invalid huffman code" only if the stream actually uses a missing code.
    fn build(lengths: &[u16]) -> Result<Huff, InflateError> {
        let mut counts = [0u16; MAX_CODE_LEN + 1];
        for &len in lengths {
            counts[len as usize] += 1;
        }
        if counts[0] as usize == lengths.len() {
            return Err(InflateError::Corrupt {
                detail: "huffman table has no symbols",
            });
        }
        let mut left: i32 = 1;
        for &count in counts.iter().skip(1) {
            left = (left << 1) - count as i32;
            if left < 0 {
                return Err(InflateError::Corrupt {
                    detail: "over-subscribed huffman code lengths",
                });
            }
        }
        // Offsets of the first symbol of each code length in `symbols`.
        let mut offsets = [0u16; MAX_CODE_LEN + 1];
        for len in 1..MAX_CODE_LEN {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.len() - counts[0] as usize];
        let mut cursor = offsets;
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[cursor[len as usize] as usize] = sym as u16;
                cursor[len as usize] += 1;
            }
        }
        // Fast table: canonical code values per length, bit-reversed into
        // every index whose low `len` bits match.
        let mut fast = vec![0u16; FAST_SIZE];
        let mut code = 0u32;
        let mut index = 0usize;
        for len in 1..=MAX_CODE_LEN as u32 {
            for _ in 0..counts[len as usize] {
                let sym = symbols[index];
                index += 1;
                if len <= FAST_BITS {
                    let rev = reverse_bits(code, len) as usize;
                    let step = 1usize << len;
                    let entry = ((len as u16) << 12) | sym;
                    let mut slot = rev;
                    while slot < FAST_SIZE {
                        fast[slot] = entry;
                        slot += step;
                    }
                }
                code += 1;
            }
            code <<= 1;
        }
        Ok(Huff {
            counts,
            symbols,
            fast,
        })
    }

    fn fixed_litlen() -> Huff {
        let mut lengths = [0u16; 288];
        for (sym, len) in lengths.iter_mut().enumerate() {
            *len = match sym {
                0..=143 => 8,
                144..=255 => 9,
                256..=279 => 7,
                _ => 8,
            };
        }
        Huff::build(&lengths).expect("fixed litlen table is well-formed")
    }

    fn fixed_dist() -> Huff {
        Huff::build(&[5u16; 30]).expect("fixed dist table is well-formed")
    }
}

/// Where the decoder is between `read_chunk` calls. Decoding pauses only at
/// symbol or sub-copy boundaries, so no mid-symbol bit state is needed.
enum State {
    /// Before a member header (start of stream or after a trailer).
    MemberBoundary,
    /// Between deflate blocks inside a member.
    BlockBoundary { final_block: bool },
    /// Inside a stored block with `remaining` raw bytes to copy.
    Stored { remaining: usize, final_block: bool },
    /// Inside a Huffman-coded block.
    Coded {
        litlen: Huff,
        dist: Huff,
        final_block: bool,
    },
    /// Clean end of input after a complete member.
    Done,
}

/// Pull-based streaming gzip decoder over a byte-source callback.
///
/// The source fills the provided buffer with the next compressed bytes and
/// returns how many it wrote (0 = end of input). `read_chunk` appends at
/// least `min` decompressed bytes to `out` unless the stream ends first.
pub struct GzReader<R> {
    src: R,
    /// Compressed-byte staging buffer.
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    eof: bool,
    /// Bit accumulator, LSB = next bit in the stream.
    bitbuf: u64,
    nbits: u32,
    state: State,
    window: Vec<u8>,
    wpos: usize,
    wfilled: usize,
    crc: u32,
    member_out: u64,
    bytes_in: u64,
    bytes_out: u64,
}

const SRC_CHUNK: usize = 32 * 1024;

impl<R> GzReader<R>
where
    R: FnMut(&mut [u8]) -> Result<usize, String>,
{
    pub fn new(src: R) -> GzReader<R> {
        GzReader {
            src,
            buf: vec![0u8; SRC_CHUNK],
            pos: 0,
            len: 0,
            eof: false,
            bitbuf: 0,
            nbits: 0,
            state: State::MemberBoundary,
            window: vec![0u8; WINDOW_SIZE],
            wpos: 0,
            wfilled: 0,
            crc: 0,
            member_out: 0,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// Total compressed bytes consumed from the source so far.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Total decompressed bytes produced so far.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    fn refill_src(&mut self) -> Result<(), InflateError> {
        if self.eof || self.pos < self.len {
            return Ok(());
        }
        let n = (self.src)(&mut self.buf).map_err(InflateError::Source)?;
        self.pos = 0;
        self.len = n;
        self.bytes_in += n as u64;
        if n == 0 {
            self.eof = true;
        }
        Ok(())
    }

    /// Top up the bit accumulator as far as the source allows (no error at
    /// EOF; callers check `nbits`).
    fn fill_bits(&mut self) -> Result<(), InflateError> {
        while self.nbits <= 56 {
            if self.pos >= self.len {
                self.refill_src()?;
                if self.pos >= self.len {
                    return Ok(());
                }
            }
            self.bitbuf |= (self.buf[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
        Ok(())
    }

    fn take_bits(&mut self, n: u32, context: &'static str) -> Result<u64, InflateError> {
        if self.nbits < n {
            self.fill_bits()?;
            if self.nbits < n {
                return Err(InflateError::Truncated { context });
            }
        }
        let val = self.bitbuf & ((1u64 << n) - 1);
        self.bitbuf >>= n;
        self.nbits -= n;
        Ok(val)
    }

    fn take_byte(&mut self, context: &'static str) -> Result<u8, InflateError> {
        Ok(self.take_bits(8, context)? as u8)
    }

    fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.bitbuf >>= drop;
        self.nbits -= drop;
    }

    /// Append `bytes` to the output, the sliding window and the running CRC.
    fn emit_slice(&mut self, bytes: &[u8], out: &mut Vec<u8>) {
        self.crc = crc32_update(self.crc, bytes);
        let tail = if bytes.len() > WINDOW_SIZE {
            &bytes[bytes.len() - WINDOW_SIZE..]
        } else {
            bytes
        };
        // Ring copy in at most two contiguous segments.
        let first = (WINDOW_SIZE - self.wpos).min(tail.len());
        self.window[self.wpos..self.wpos + first].copy_from_slice(&tail[..first]);
        let rest = tail.len() - first;
        if rest > 0 {
            self.window[..rest].copy_from_slice(&tail[first..]);
        }
        self.wpos = (self.wpos + tail.len()) & (WINDOW_SIZE - 1);
        self.wfilled = (self.wfilled + bytes.len()).min(WINDOW_SIZE);
        self.member_out += bytes.len() as u64;
        self.bytes_out += bytes.len() as u64;
        out.extend_from_slice(bytes);
    }

    fn emit_byte(&mut self, b: u8, out: &mut Vec<u8>) {
        self.crc = crc32_tables()[0][((self.crc ^ b as u32) & 0xff) as usize] ^ (self.crc >> 8);
        self.window[self.wpos] = b;
        self.wpos = (self.wpos + 1) & (WINDOW_SIZE - 1);
        if self.wfilled < WINDOW_SIZE {
            self.wfilled += 1;
        }
        self.member_out += 1;
        self.bytes_out += 1;
        out.push(b);
    }

    fn skip_zero_terminated(&mut self, context: &'static str) -> Result<(), InflateError> {
        loop {
            if self.take_byte(context)? == 0 {
                return Ok(());
            }
        }
    }

    fn read_member_header(&mut self) -> Result<(), InflateError> {
        let id1 = self.take_byte("gzip header")?;
        let id2 = self.take_byte("gzip header")?;
        if [id1, id2] != GZIP_MAGIC {
            return Err(InflateError::BadMagic { found: [id1, id2] });
        }
        let method = self.take_byte("gzip header")?;
        if method != 8 {
            return Err(InflateError::UnsupportedMethod(method));
        }
        let flg = self.take_byte("gzip header")?;
        if flg & 0xe0 != 0 {
            return Err(InflateError::ReservedFlags(flg));
        }
        for _ in 0..6 {
            self.take_byte("gzip header")?; // MTIME, XFL, OS
        }
        if flg & 0x04 != 0 {
            let xlen = self.take_bits(16, "gzip FEXTRA field")? as usize;
            for _ in 0..xlen {
                self.take_byte("gzip FEXTRA field")?;
            }
        }
        if flg & 0x08 != 0 {
            self.skip_zero_terminated("gzip FNAME field")?;
        }
        if flg & 0x10 != 0 {
            self.skip_zero_terminated("gzip FCOMMENT field")?;
        }
        if flg & 0x02 != 0 {
            self.take_bits(16, "gzip FHCRC field")?;
        }
        self.crc = 0xffff_ffff;
        self.member_out = 0;
        Ok(())
    }

    fn read_trailer(&mut self) -> Result<(), InflateError> {
        self.align_byte();
        let expected_crc = self.take_bits(32, "gzip trailer")? as u32;
        let expected_len = self.take_bits(32, "gzip trailer")? as u32;
        let found_crc = !self.crc;
        if expected_crc != found_crc {
            return Err(InflateError::BadCrc {
                expected: expected_crc,
                found: found_crc,
            });
        }
        let found_len = (self.member_out & 0xffff_ffff) as u32;
        if expected_len != found_len {
            return Err(InflateError::BadLength {
                expected: expected_len,
                found: found_len,
            });
        }
        Ok(())
    }

    /// Decode one Huffman symbol with `h` (a table owned outside `self`):
    /// single-level fast lookup first, bit-serial canonical fallback for
    /// long codes and near-EOF tails.
    fn decode_with(&mut self, h: &Huff, context: &'static str) -> Result<u16, InflateError> {
        if self.nbits < MAX_CODE_LEN as u32 {
            self.fill_bits()?;
        }
        let entry = h.fast[(self.bitbuf & (FAST_SIZE as u64 - 1)) as usize];
        if entry != 0 {
            let len = (entry >> 12) as u32;
            if len <= self.nbits {
                self.bitbuf >>= len;
                self.nbits -= len;
                return Ok(entry & 0x0fff);
            }
        }
        let mut code: i32 = 0;
        let mut first: i32 = 0;
        let mut index: i32 = 0;
        for len in 1..=MAX_CODE_LEN {
            if self.nbits == 0 {
                self.fill_bits()?;
                if self.nbits == 0 {
                    return Err(InflateError::Truncated { context });
                }
            }
            code |= (self.bitbuf & 1) as i32;
            self.bitbuf >>= 1;
            self.nbits -= 1;
            let count = h.counts[len] as i32;
            if code - first < count {
                return Ok(h.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(InflateError::Corrupt {
            detail: "invalid huffman code",
        })
    }

    fn read_dynamic_tables(&mut self) -> Result<(Huff, Huff), InflateError> {
        let hlit = self.take_bits(5, "dynamic huffman table")? as usize + 257;
        let hdist = self.take_bits(5, "dynamic huffman table")? as usize + 1;
        let hclen = self.take_bits(4, "dynamic huffman table")? as usize + 4;
        if hlit > 286 || hdist > 30 {
            return Err(InflateError::Corrupt {
                detail: "dynamic block declares too many codes",
            });
        }
        let mut clen_lengths = [0u16; 19];
        for &slot in CLEN_ORDER.iter().take(hclen) {
            clen_lengths[slot] = self.take_bits(3, "dynamic huffman table")? as u16;
        }
        let clen = Huff::build(&clen_lengths)?;
        let mut lengths = vec![0u16; hlit + hdist];
        let mut i = 0usize;
        while i < lengths.len() {
            let sym = self.decode_with(&clen, "dynamic huffman table")?;
            match sym {
                0..=15 => {
                    lengths[i] = sym;
                    i += 1;
                }
                16 => {
                    if i == 0 {
                        return Err(InflateError::Corrupt {
                            detail: "repeat code with no previous length",
                        });
                    }
                    let prev = lengths[i - 1];
                    let reps = self.take_bits(2, "dynamic huffman table")? as usize + 3;
                    if i + reps > lengths.len() {
                        return Err(InflateError::Corrupt {
                            detail: "code-length repeat overruns table",
                        });
                    }
                    for _ in 0..reps {
                        lengths[i] = prev;
                        i += 1;
                    }
                }
                17 => {
                    let reps = self.take_bits(3, "dynamic huffman table")? as usize + 3;
                    if i + reps > lengths.len() {
                        return Err(InflateError::Corrupt {
                            detail: "code-length repeat overruns table",
                        });
                    }
                    i += reps;
                }
                18 => {
                    let reps = self.take_bits(7, "dynamic huffman table")? as usize + 11;
                    if i + reps > lengths.len() {
                        return Err(InflateError::Corrupt {
                            detail: "code-length repeat overruns table",
                        });
                    }
                    i += reps;
                }
                _ => {
                    return Err(InflateError::Corrupt {
                        detail: "invalid code-length symbol",
                    })
                }
            }
        }
        if lengths[256] == 0 {
            return Err(InflateError::Corrupt {
                detail: "dynamic block has no end-of-block code",
            });
        }
        let litlen = Huff::build(&lengths[..hlit])?;
        let dist = Huff::build(&lengths[hlit..])?;
        Ok((litlen, dist))
    }

    fn start_block(&mut self) -> Result<(), InflateError> {
        let final_block = self.take_bits(1, "deflate block header")? != 0;
        let btype = self.take_bits(2, "deflate block header")?;
        match btype {
            0 => {
                self.align_byte();
                let len = self.take_bits(16, "stored block header")? as usize;
                let nlen = self.take_bits(16, "stored block header")? as usize;
                if len != (!nlen & 0xffff) {
                    return Err(InflateError::Corrupt {
                        detail: "stored block length check failed",
                    });
                }
                self.state = State::Stored {
                    remaining: len,
                    final_block,
                };
            }
            1 => {
                self.state = State::Coded {
                    litlen: Huff::fixed_litlen(),
                    dist: Huff::fixed_dist(),
                    final_block,
                };
            }
            2 => {
                let (litlen, dist) = self.read_dynamic_tables()?;
                self.state = State::Coded {
                    litlen,
                    dist,
                    final_block,
                };
            }
            _ => {
                return Err(InflateError::Corrupt {
                    detail: "reserved block type 3",
                })
            }
        }
        Ok(())
    }

    fn copy_stored(
        &mut self,
        remaining: usize,
        budget: usize,
        out: &mut Vec<u8>,
    ) -> Result<usize, InflateError> {
        let mut left = remaining.min(budget.max(1));
        let mut copied = 0usize;
        while left > 0 {
            if self.nbits >= 8 {
                let b = (self.bitbuf & 0xff) as u8;
                self.bitbuf >>= 8;
                self.nbits -= 8;
                self.emit_byte(b, out);
                left -= 1;
                copied += 1;
                continue;
            }
            if self.pos >= self.len {
                self.refill_src()?;
                if self.pos >= self.len {
                    return Err(InflateError::Truncated {
                        context: "stored block",
                    });
                }
            }
            let take = left.min(self.len - self.pos);
            let start = self.pos;
            self.pos += take;
            // Detach the staging buffer so the slice can be emitted
            // without borrowing `self.buf` across the `&mut self` call.
            let buf = std::mem::take(&mut self.buf);
            self.emit_slice(&buf[start..start + take], out);
            self.buf = buf;
            left -= take;
            copied += take;
        }
        Ok(copied)
    }

    fn copy_match(
        &mut self,
        len: usize,
        dist: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), InflateError> {
        if dist == 0 || dist > self.wfilled {
            return Err(InflateError::Corrupt {
                detail: "back-reference before start of stream",
            });
        }
        let mut src = (self.wpos + WINDOW_SIZE - dist) & (WINDOW_SIZE - 1);
        for _ in 0..len {
            let b = self.window[src];
            src = (src + 1) & (WINDOW_SIZE - 1);
            self.emit_byte(b, out);
        }
        Ok(())
    }

    /// Decompress until at least `min` new bytes are in `out` or the stream
    /// ends. Returns `Ok(true)` while more input remains, `Ok(false)` once
    /// the final member has been fully decoded and verified.
    pub fn read_chunk(&mut self, out: &mut Vec<u8>, min: usize) -> Result<bool, InflateError> {
        let target = out.len() + min.max(1);
        loop {
            if out.len() >= target {
                return Ok(true);
            }
            match std::mem::replace(&mut self.state, State::Done) {
                State::Done => {
                    self.state = State::Done;
                    return Ok(false);
                }
                State::MemberBoundary => {
                    self.fill_bits()?;
                    if self.nbits == 0 && self.eof {
                        self.state = State::Done;
                        return Ok(false);
                    }
                    self.state = State::MemberBoundary;
                    self.read_member_header()?;
                    self.state = State::BlockBoundary { final_block: false };
                }
                State::BlockBoundary { final_block } => {
                    if final_block {
                        self.state = State::MemberBoundary;
                        self.read_trailer()?;
                        continue;
                    }
                    self.state = State::BlockBoundary { final_block };
                    self.start_block()?;
                }
                State::Stored {
                    remaining,
                    final_block,
                } => {
                    let budget = target - out.len();
                    let copied = self.copy_stored(remaining, budget, out)?;
                    let left = remaining - copied;
                    self.state = if left == 0 {
                        State::BlockBoundary { final_block }
                    } else {
                        State::Stored {
                            remaining: left,
                            final_block,
                        }
                    };
                }
                State::Coded {
                    litlen,
                    dist,
                    final_block,
                } => {
                    // Tables are held as locals while decoding so the bit
                    // reader can borrow `self` mutably; they move back into
                    // the state when the chunk budget pauses the block.
                    let mut block_done = false;
                    loop {
                        let sym = self.decode_with(&litlen, "huffman-coded block")?;
                        if sym < 256 {
                            self.emit_byte(sym as u8, out);
                        } else if sym == 256 {
                            block_done = true;
                            break;
                        } else {
                            let li = sym as usize - 257;
                            if li >= LEN_BASE.len() {
                                return Err(InflateError::Corrupt {
                                    detail: "invalid length symbol",
                                });
                            }
                            let extra = LEN_EXTRA[li] as u32;
                            let len = LEN_BASE[li] as usize
                                + self.take_bits(extra, "huffman-coded block")? as usize;
                            let dsym = self.decode_with(&dist, "huffman-coded block")? as usize;
                            if dsym >= DIST_BASE.len() {
                                return Err(InflateError::Corrupt {
                                    detail: "invalid distance symbol",
                                });
                            }
                            let dextra = DIST_EXTRA[dsym] as u32;
                            let d = DIST_BASE[dsym] as usize
                                + self.take_bits(dextra, "huffman-coded block")? as usize;
                            self.copy_match(len, d, out)?;
                        }
                        if out.len() >= target {
                            break;
                        }
                    }
                    self.state = if block_done {
                        State::BlockBoundary { final_block }
                    } else {
                        State::Coded {
                            litlen,
                            dist,
                            final_block,
                        }
                    };
                }
            }
        }
    }
}

/// One-shot decompression of a complete gzip byte string (all members).
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut read = 0usize;
    let mut reader = GzReader::new(move |buf: &mut [u8]| {
        let n = (data.len() - read).min(buf.len());
        buf[..n].copy_from_slice(&data[read..read + n]);
        read += n;
        Ok(n)
    });
    let mut out = Vec::new();
    while reader.read_chunk(&mut out, 64 * 1024)? {}
    Ok(out)
}

/// Block strategy for [`gzip_compress`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompressMode {
    /// Raw stored blocks (fastest to write, ratio 1.0).
    Stored,
    /// Fixed-Huffman literal coding (no match search; exercises the real
    /// bit-level decode path and shrinks ASCII slightly).
    FixedHuffman,
}

struct BitWriter {
    out: Vec<u8>,
    bitbuf: u64,
    nbits: u32,
}

impl BitWriter {
    fn new(out: Vec<u8>) -> BitWriter {
        BitWriter {
            out,
            bitbuf: 0,
            nbits: 0,
        }
    }

    /// Append `len` bits, LSB-first (deflate bit packing order).
    fn put_bits(&mut self, value: u64, len: u32) {
        self.bitbuf |= value << self.nbits;
        self.nbits += len;
        while self.nbits >= 8 {
            self.out.push((self.bitbuf & 0xff) as u8);
            self.bitbuf >>= 8;
            self.nbits -= 8;
        }
    }

    /// Append a Huffman code, MSB of the code first.
    fn put_code(&mut self, code: u32, len: u32) {
        self.put_bits(reverse_bits(code, len) as u64, len);
    }

    fn align(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.bitbuf & 0xff) as u8);
            self.bitbuf = 0;
            self.nbits = 0;
        }
    }
}

fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xffff_ffff, data)
}

/// Compress `data` into a single well-formed gzip member.
pub fn gzip_compress(data: &[u8], mode: CompressMode) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    out.extend_from_slice(&GZIP_MAGIC);
    out.push(8); // CM = deflate
    out.push(0); // FLG
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME
    out.push(0); // XFL
    out.push(255); // OS = unknown
    match mode {
        CompressMode::Stored => {
            let mut chunks = data.chunks(65535).peekable();
            if data.is_empty() {
                out.push(0x01); // BFINAL=1 BTYPE=00, already byte aligned
                out.extend_from_slice(&[0, 0, 0xff, 0xff]);
            }
            while let Some(chunk) = chunks.next() {
                let bfinal = chunks.peek().is_none();
                out.push(if bfinal { 0x01 } else { 0x00 });
                let len = chunk.len() as u16;
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&(!len).to_le_bytes());
                out.extend_from_slice(chunk);
            }
        }
        CompressMode::FixedHuffman => {
            let mut bw = BitWriter::new(out);
            bw.put_bits(0b1, 1); // BFINAL
            bw.put_bits(0b01, 2); // BTYPE = fixed
            for &b in data {
                let sym = b as u32;
                if sym <= 143 {
                    bw.put_code(0x30 + sym, 8);
                } else {
                    bw.put_code(0x190 + (sym - 144), 9);
                }
            }
            bw.put_code(0, 7); // end-of-block (symbol 256)
            bw.align();
            out = bw.out;
        }
    }
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], mode: CompressMode) {
        let gz = gzip_compress(data, mode);
        assert!(is_gzip(&gz));
        let back = gunzip(&gz).expect("roundtrip decode");
        assert_eq!(back, data, "roundtrip mismatch for {mode:?}");
    }

    #[test]
    fn roundtrips_cover_both_modes_and_sizes() {
        for mode in [CompressMode::Stored, CompressMode::FixedHuffman] {
            roundtrip(b"", mode);
            roundtrip(b"hello, gzip", mode);
            roundtrip(&[0u8; 70000], mode); // multiple stored blocks
            let mut seq = Vec::new();
            let mut x = 12345u32;
            for _ in 0..100_000 {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                seq.push((x >> 24) as u8);
            }
            roundtrip(&seq, mode);
        }
    }

    #[test]
    fn concatenated_members_decode_as_one_stream() {
        let mut gz = gzip_compress(b"first,", CompressMode::FixedHuffman);
        gz.extend_from_slice(&gzip_compress(b"second", CompressMode::Stored));
        assert_eq!(gunzip(&gz).unwrap(), b"first,second");
    }

    #[test]
    fn streaming_chunks_match_oneshot() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let gz = gzip_compress(&data, CompressMode::FixedHuffman);
        let mut read = 0usize;
        let gz2 = gz.clone();
        let mut reader = GzReader::new(move |buf: &mut [u8]| {
            // Drip-feed 7 bytes at a time to exercise refill paths.
            let n = (gz2.len() - read).min(buf.len()).min(7);
            buf[..n].copy_from_slice(&gz2[read..read + n]);
            read += n;
            Ok(n)
        });
        let mut out = Vec::new();
        let mut chunks = 0;
        while reader.read_chunk(&mut out, 1333).unwrap() {
            chunks += 1;
        }
        assert_eq!(out, data);
        assert!(chunks > 10, "expected many bounded chunks, got {chunks}");
        assert_eq!(reader.bytes_out(), data.len() as u64);
        assert_eq!(reader.bytes_in(), gz.len() as u64);
    }

    #[test]
    fn truncated_stream_is_reported() {
        let gz = gzip_compress(b"some data worth keeping", CompressMode::FixedHuffman);
        for cut in [1, 5, gz.len() - 9, gz.len() - 1] {
            let err = gunzip(&gz[..cut]).unwrap_err();
            assert!(
                matches!(err, InflateError::Truncated { .. }),
                "cut at {cut}: expected truncation, got {err}"
            );
        }
    }

    #[test]
    fn bad_crc_and_length_are_reported() {
        let data = b"payload protected by crc32";
        let mut gz = gzip_compress(data, CompressMode::Stored);
        let n = gz.len();
        gz[n - 5] ^= 0xff; // flip a CRC byte
        assert!(matches!(
            gunzip(&gz).unwrap_err(),
            InflateError::BadCrc { .. }
        ));
        let mut gz = gzip_compress(data, CompressMode::Stored);
        let n = gz.len();
        gz[n - 1] ^= 0x01; // flip an ISIZE byte
        assert!(matches!(
            gunzip(&gz).unwrap_err(),
            InflateError::BadLength { .. }
        ));
    }

    #[test]
    fn garbage_header_and_corrupt_block_are_reported() {
        assert!(matches!(
            gunzip(b"not a gzip file at all").unwrap_err(),
            InflateError::BadMagic { .. }
        ));
        let mut gz = gzip_compress(b"x", CompressMode::Stored);
        gz[2] = 9; // unsupported method
        assert!(matches!(
            gunzip(&gz).unwrap_err(),
            InflateError::UnsupportedMethod(9)
        ));
        // Corrupt the stored-block NLEN check.
        let mut gz = gzip_compress(b"stored block payload", CompressMode::Stored);
        gz[13] ^= 0xff; // NLEN low byte
        assert!(matches!(
            gunzip(&gz).unwrap_err(),
            InflateError::Corrupt { .. }
        ));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let msg = InflateError::BadCrc {
            expected: 1,
            found: 2,
        }
        .to_string();
        assert!(msg.contains("CRC mismatch"), "{msg}");
        let msg = InflateError::Truncated {
            context: "gzip trailer",
        }
        .to_string();
        assert!(msg.contains("truncated"), "{msg}");
        assert!(msg.contains("gzip trailer"), "{msg}");
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the subset of the `rand` 0.8 API the workspace
//! uses: `rngs::StdRng`, the `Rng`/`SeedableRng` traits (`gen`,
//! `gen_range`, `gen_bool`), and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 stream of upstream `StdRng`, so sequences differ from
//! upstream, but every consumer in this workspace only relies on
//! *seed-determinism* (same seed ⇒ same sequence), which holds.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// A seedable, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    /// The raw xoshiro256++ state, for checkpoint serialization.
    ///
    /// Not part of the upstream `rand` API: the workspace's
    /// crash-resumable replay snapshots generator cursors mid-stream,
    /// which requires round-tripping the generator state itself.
    pub fn to_state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Self::to_state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// Advances the state and returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator whose sequence is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard xoshiro seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types samplable uniformly from the unit distribution via [`Rng::gen`].
pub trait UnitSample: Sized {
    /// Draws one value from the type's "standard" distribution.
    fn unit_sample(rng: &mut StdRng) -> Self;
}

impl UnitSample for f64 {
    #[inline]
    fn unit_sample(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UnitSample for u64 {
    #[inline]
    fn unit_sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl UnitSample for u32 {
    #[inline]
    fn unit_sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl UnitSample for bool {
    #[inline]
    fn unit_sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty (matching upstream `rand`), except
    /// for degenerate float ranges `lo..lo`, which return `lo` — callers
    /// here derive float bounds from data and may legitimately collapse.
    fn sample_single(self, rng: &mut StdRng) -> T;
}

/// Bias-free-enough integer draw in `[0, n)` via 128-bit multiply-shift.
#[inline]
fn below(rng: &mut StdRng, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single(self, rng: &mut StdRng) -> f64 {
        assert!(self.start <= self.end, "cannot sample empty range");
        if self.start == self.end {
            return self.start;
        }
        let u = f64::unit_sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; nudge back in.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::unit_sample(rng) * (hi - lo)
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait (subset of upstream `Rng`).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws from the type's standard distribution (`f64` ⇒ `[0, 1)`).
    fn gen<T: UnitSample>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::unit_sample(self.as_std_rng())
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsStdRng,
    {
        range.sample_single(self.as_std_rng())
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsStdRng,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::unit_sample(self.as_std_rng()) < p
    }
}

/// Access to the underlying concrete generator.
///
/// The upstream crate is generic over `RngCore`; this shim has exactly one
/// generator, so the distributions sample from `StdRng` directly.
pub trait AsStdRng {
    /// The concrete generator behind this handle.
    fn as_std_rng(&mut self) -> &mut StdRng;
}

impl AsStdRng for StdRng {
    #[inline]
    fn as_std_rng(&mut self) -> &mut StdRng {
        self
    }
}

impl<R: AsStdRng + ?Sized> AsStdRng for &mut R {
    #[inline]
    fn as_std_rng(&mut self) -> &mut StdRng {
        (**self).as_std_rng()
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod seq {
    use super::{below, AsStdRng};

    /// Slice helpers (subset: `shuffle` and `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: AsStdRng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: AsStdRng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: AsStdRng + ?Sized>(&mut self, rng: &mut R) {
            let rng = rng.as_std_rng();
            for i in (1..self.len()).rev() {
                let j = below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: AsStdRng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng.as_std_rng(), self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = r.gen_range(0usize..4);
            assert!(i < 4);
        }
        assert_eq!(r.gen_range(7.0f64..7.0), 7.0);
        assert_eq!(r.gen_range(5u32..=5), 5);
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes_and_is_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_and_gen_bool() {
        let mut r = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut r).unwrap()));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x surface this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`, range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! [`Just`], `prop_oneof!`, the `proptest!` macro with an optional
//! `proptest_config` attribute, and the `prop_assert*` macros.
//!
//! Differences from upstream: inputs are drawn from a fixed-seed RNG (no
//! OS entropy), there is no shrinking — a failing case panics with the
//! generated inputs debug-printed via the assertion message — and the
//! default case count is 64. Both are acceptable here: tests stay
//! deterministic across runs, which the workspace treats as a feature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Failure payload for properties that early-exit with `Err` (rare here;
/// the assertion macros panic directly).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl<S: Into<String>> From<S> for TestCaseError {
    fn from(s: S) -> Self {
        Self(s.into())
    }
}

/// The deterministic source of test inputs.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Seeds the runner from the test name so every test draws an
    /// independent, reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values where `f` is true (bounded retry).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (**self).generate(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        (**self).generate(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// A union of boxed strategies, sampled uniformly (used by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let i = runner.rng().gen_range(0..self.options.len());
        self.options[i].generate(runner)
    }
}

pub mod strategy {
    //! Re-exports mirroring upstream's module layout.
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::Range;

    /// Anything usable as the size argument of [`vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    /// See `proptest::collection::vec`.
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.size.pick(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (subset: `select`).

    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// See `proptest::sample::select`.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// A strategy picking uniformly from `options`; panics when empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            let i = runner.rng().gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestRunner,
    };

    pub mod prop {
        //! The `prop::` module path used inside `prelude::*` imports.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut runner);)*
                    // Upstream bodies run inside a closure returning
                    // `Result`, so `return Ok(())` is an early case exit.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property test case failed: {:?}", e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_collections_generate_in_bounds() {
        let mut runner = TestRunner::from_name("smoke");
        let s = (0u32..10, -1.0f64..1.0);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut runner);
            assert!(a < 10);
            assert!((-1.0..1.0).contains(&b));
        }
        let v = prop::collection::vec(0u64..5, 3..7).generate(&mut runner);
        assert!((3..7).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 5));
        let picked = prop::sample::select(vec!["a", "b"]).generate(&mut runner);
        assert!(picked == "a" || picked == "b");
    }

    #[test]
    fn oneof_map_filter_compose() {
        let mut runner = TestRunner::from_name("compose");
        let s = prop_oneof![
            Just(1u32),
            (2u32..5).prop_map(|v| v * 10),
            (0u32..100).prop_filter("even", |v| v % 2 == 0),
        ];
        for _ in 0..300 {
            let v = s.generate(&mut runner);
            assert!(v == 1 || (20..50).contains(&v) || v % 2 == 0, "{v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(a in 0u32..50, b in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(a < 50);
            prop_assert!((2..5).contains(&b.len()));
            prop_assert_eq!(b.len(), b.len());
            prop_assert_ne!(b.len(), 99usize);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0.0f64..=1.0) {
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }
}

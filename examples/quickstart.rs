//! Quickstart: deploy a function, measure it, autotune it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Deploys the `faceblur` benchmark with a deliberately mediocre resource
//! configuration, measures it, then lets the autotuner (BO with GP, 20
//! trials — the paper's §5 setup) find a better one, and reports the
//! before/after execution time and cost.

use faas_freedom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let function = FunctionKind::Faceblur;
    let input = function.default_input();

    // 1. Deploy with a mediocre hand-picked configuration: a quarter vCPU
    //    and generous memory on the default Intel family.
    let naive = ResourceConfig::new(InstanceFamily::M5, 0.25, 2048).expect("valid config");
    let mut gateway = Gateway::new(7)?;
    gateway.deploy(FunctionSpec::new("blur", function), naive)?;
    let before = gateway.invoke("blur", &input)?;
    println!("before tuning : {before}");

    // 2. Autotune for execution time (offline profiling, 20 trials).
    let tuner = Autotuner::new(SurrogateKind::Gp);
    let outcome = tuner.tune_offline(function, &input, Objective::ExecutionTime, 7)?;
    let recommended = outcome.recommended().expect("some trial succeeded");
    println!(
        "autotuner ran {} trials ({} failed, {} configs sliced away)",
        outcome.run.trials.len(),
        outcome.run.failures(),
        outcome.run.sliced_away,
    );

    // 3. Redeploy with the recommendation and compare.
    gateway.reconfigure("blur", recommended)?;
    let after = gateway.invoke("blur", &input)?;
    println!("after tuning  : {after}");

    let speedup = before.duration_secs / after.duration_secs;
    let cost_ratio = before.cost_usd / after.cost_usd;
    println!("speedup {speedup:.2}x, cost ratio {cost_ratio:.2}x");
    assert!(after.duration_secs < before.duration_secs);
    Ok(())
}

//! The three §6.1 user interfaces, side by side, for the OCR workload.
//!
//! ```text
//! cargo run --release --example pareto_menu
//! ```
//!
//! Instead of asking a user for a (CPU, memory, family) triple, the
//! provider can offer outcome-level choices:
//! 1. the predicted Pareto front (pick a point on the time/cost curve),
//! 2. five pre-trained weightings of time vs. cost,
//! 3. a hierarchical trade: "best time, then cut cost within +20%".

use faas_freedom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let function = FunctionKind::Ocr;
    let input = function.default_input();

    println!("1) predicted Pareto front (time vs cost menu):");
    let menu = pareto_interface(function, &input, SurrogateKind::Gp, 11)?;
    for (i, option) in menu.iter().enumerate() {
        println!(
            "   option {i}: predicted {:.2}s for ${:.2e}   [{}]",
            option.predicted_time_secs, option.predicted_cost_usd, option.config
        );
    }

    println!("\n2) weighted multi-objective menu (Wt = time weight):");
    for entry in weighted_interface(function, &input, SurrogateKind::Gp, 11)? {
        println!(
            "   Wt={:<4} -> {:.2}s for ${:.2e}   [{}]",
            entry.wt,
            entry.option.predicted_time_secs,
            entry.option.predicted_cost_usd,
            entry.option.config
        );
    }

    println!("\n3) hierarchical: minimize time, then trade ≤20% of it for cost:");
    let outcome = hierarchical_interface(
        function,
        &input,
        Objective::ExecutionTime,
        0.20,
        SurrogateKind::Gp,
        11,
    )?;
    println!(
        "   time-optimal : {:.2}s for ${:.2e}   [{}]",
        outcome.primary_best.predicted_time_secs,
        outcome.primary_best.predicted_cost_usd,
        outcome.primary_best.config
    );
    println!(
        "   traded       : {:.2}s for ${:.2e}   [{}]",
        outcome.chosen.predicted_time_secs,
        outcome.chosen.predicted_cost_usd,
        outcome.chosen.config
    );
    assert!(menu.len() >= 2, "a menu needs at least two options");
    Ok(())
}

//! Online optimization: tune in production, count the damage.
//!
//! ```text
//! cargo run --release --example online_tuning
//! ```
//!
//! §5.4's scenario: instead of profiling at deployment time, use live
//! production invocations as optimization trials. Every trial with a bad
//! configuration degrades a real request, so the method that converges
//! with the fewest "violations" (runs ≥1.5× the best configuration's
//! execution time) wins. This example runs BO-GP and random sampling side
//! by side on the `linpack` workload and prints both trajectories.

use faas_freedom::optimizer::online::count_violations;
use faas_freedom::optimizer::{run_sampling, RandomSearch, SearchSpace};
use faas_freedom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let function = FunctionKind::Linpack;
    let input = function.default_input();
    let space = SearchSpace::table1();

    // Ground truth, only to score violations afterwards (the online tuner
    // never sees it).
    let table = collect_ground_truth(function, &input, space.configs(), 5, 3)?;
    let best_et = table
        .best_by_time()
        .map(|p| p.exec_time_secs)
        .expect("feasible config exists");

    // Online BO-GP: every trial is one production invocation.
    let tuner = Autotuner::new(SurrogateKind::Gp);
    let bo = tuner.tune_online(function, &input, Objective::ExecutionTime, 3)?;
    println!("BO-GP online trajectory (execution time per trial):");
    for (i, t) in bo.run.trials.iter().enumerate() {
        let flag = if t.failed {
            "  <- OOM"
        } else if t.exec_time_secs >= 1.5 * best_et {
            "  <- violation"
        } else {
            ""
        };
        println!(
            "  trial {:>2}: {:>7.3}s on {}{}",
            i + 1,
            t.exec_time_secs,
            t.config,
            flag
        );
    }

    // Random sampling baseline over a fresh gateway.
    let mut gateway = Gateway::new(3)?;
    gateway.deploy(
        FunctionSpec::new(function.name(), function),
        space.configs()[0],
    )?;
    let mut evaluator = GatewayEvaluator::new(gateway, function.name(), input.clone(), 1);
    let random = run_sampling(
        &mut RandomSearch::new(3),
        &space,
        &mut evaluator,
        Objective::ExecutionTime,
        20,
    )?;

    let bo_violations = count_violations(&bo.run, best_et);
    let random_violations = count_violations(&random, best_et);
    println!("\nviolations (≥1.5x best ET {best_et:.2}s): BO-GP {bo_violations}, Random {random_violations}");
    println!(
        "best found: BO-GP {:.3}s, Random {:.3}s, space optimum {best_et:.3}s",
        bo.run.best_value().unwrap_or(f64::NAN),
        random.best_value().unwrap_or(f64::NAN),
    );
    Ok(())
}

//! Provider-side planning: soak up idle instance types with spot pricing.
//!
//! ```text
//! cargo run --release --example provider_idle_capacity
//! ```
//!
//! §6.2's scenario: the provider has idle capacity of the "wrong" instance
//! families and offers it at 20% of list price. For each benchmark, an
//! execution-time model is trained (one 20-trial optimization), then the
//! planner picks each family's best predicted configuration and accepts
//! those within 10% of the best found execution time — printing the cost
//! the provider can shave while staying inside the latency guardrail.

use faas_freedom::optimizer::SearchSpace;
use faas_freedom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let planner = IdleCapacityPlanner::default();
    let space = SearchSpace::table1();

    for function in FunctionKind::ALL {
        let input = function.default_input();
        let table = collect_ground_truth(function, &input, space.configs(), 5, 42)?;
        let outcome = Autotuner::new(SurrogateKind::Gp).tune_offline(
            function,
            &input,
            Objective::ExecutionTime,
            42,
        )?;
        let placements = planner.plan(&outcome, &table, &space)?.placements;

        println!("\n{function}:");
        for p in &placements {
            let verdict = if p.accepted { "ACCEPT" } else { "reject" };
            println!(
                "  {:<4} {:<22} {verdict}  norm ET {:.2}  spot cost {:.2} of best",
                p.family.to_string(),
                p.config.to_string(),
                p.norm_exec_time,
                p.norm_spot_cost,
            );
        }
        let accepted: Vec<_> = placements.iter().filter(|p| p.accepted).collect();
        if !accepted.is_empty() {
            let mean_cut = 1.0
                - accepted.iter().map(|p| p.norm_spot_cost).sum::<f64>() / accepted.len() as f64;
            println!(
                "  -> mean cost reduction on accepted families: {:.0}%",
                mean_cut * 100.0
            );
        }
    }
    Ok(())
}

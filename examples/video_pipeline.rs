//! A video-transcoding service choosing its allocation strategy.
//!
//! ```text
//! cargo run --release --example video_pipeline
//! ```
//!
//! The paper's intro motivates decoupling with exactly this workload:
//! `transcode` parallelizes beyond one vCPU, so Azure-style Fixed CPU
//! starves it, and AWS-style proportional CPU couples the share to memory
//! it does not need. This example sweeps all four §4.1 strategies over the
//! whole video dataset and prints the achievable latency/cost frontier of
//! each.

use faas_freedom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let function = FunctionKind::Transcode;
    println!("strategy comparison for `transcode` (per-input best ET / best EC):\n");
    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>12}",
        "input", "Decoupled", "Decoupled(m5)", "Prop. CPU", "Fixed CPU"
    );

    for input in function.inputs() {
        let mut cells = Vec::new();
        for strategy in [
            AllocationStrategy::Decoupled,
            AllocationStrategy::DecoupledM5,
            AllocationStrategy::PropCpu,
            AllocationStrategy::FixedCpu,
        ] {
            let best = best_within_strategy(strategy, function, &input, 5, 42)?;
            cells.push(format!("{:.1}s", best.best_exec_time_secs));
        }
        println!(
            "{:<14} {:>12} {:>14} {:>14} {:>12}",
            input.id().to_string(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }

    // The headline check from Figure 3a: Fixed CPU pays a ~2x+ latency
    // penalty on the default video because it cannot use >1 vCPU.
    let input = function.default_input();
    let fixed = best_within_strategy(AllocationStrategy::FixedCpu, function, &input, 5, 42)?;
    let decoupled = best_within_strategy(AllocationStrategy::Decoupled, function, &input, 5, 42)?;
    let penalty = fixed.best_exec_time_secs / decoupled.best_exec_time_secs;
    println!(
        "\nFixed CPU latency penalty on {}: {penalty:.2}x (paper: ~2.7x)",
        input.id()
    );
    assert!(penalty > 1.5);
    Ok(())
}

//! Fleet-level provider economics: replay a traffic trace against a
//! finite idle pool.
//!
//! ```text
//! cargo run --release --example fleet_provider
//! ```
//!
//! Extends §6.2 beyond single placements: all six benchmark functions
//! receive Poisson traffic for five minutes; the idle-aware policy
//! steers invocations onto θ-guardrailed alternate families while each
//! function's warm spot capacity lasts, falling back to on-demand when
//! the pool is full. Compare the provider's bill and the users' latency
//! against the always-best-config baseline.

use faas_freedom::core::fleet::{
    FleetConfig, FleetSimulator, FunctionPlan, PlacementStrategy, Trace,
};
use faas_freedom::optimizer::SearchSpace;
use faas_freedom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Tune every function once and plan its alternate families.
    let planner = IdleCapacityPlanner::default();
    let space = SearchSpace::table1();
    let mut plans = Vec::new();
    for function in FunctionKind::ALL {
        let input = function.default_input();
        let table = collect_ground_truth(function, &input, space.configs(), 3, 42)?;
        let outcome = Autotuner::new(SurrogateKind::Gp).tune_offline(
            function,
            &input,
            Objective::ExecutionTime,
            42,
        )?;
        let alternates = planner.plan(&outcome, &table, &space)?;
        println!(
            "{function:<11} best {} | {} alternate families accepted",
            outcome.recommended().expect("tuned"),
            alternates.iter().filter(|a| a.accepted).count(),
        );
        plans.push(FunctionPlan {
            function,
            best_config: outcome.recommended().expect("tuned"),
            alternates,
            table,
        });
    }

    // 2. Five minutes of Poisson traffic at 0.5 rps per function.
    let trace = Trace::poisson(300.0, 0.5, 42)?;
    println!("\nreplaying {} invocations...", trace.len());

    // 3. Both policies on the same trace and fleet, replayed with the
    //    per-function shards fanned across cores.
    let sim = FleetSimulator::new(plans)?;
    let config = FleetConfig::default();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let baseline = sim.run_sharded(&trace, PlacementStrategy::BestConfigOnly, &config, threads)?;
    let idle_aware = sim.run_sharded(&trace, PlacementStrategy::IdleAware, &config, threads)?;

    println!(
        "\nbaseline  : ${:.4} total, latency inflation 1.000 (by definition)",
        baseline.total_cost_usd
    );
    println!(
        "idle-aware: ${:.4} total ({:.0}% cheaper), {:.0}% from spot, \
         mean latency inflation {:.3}, p95 {:.3}, {} capacity misses",
        idle_aware.total_cost_usd,
        (1.0 - idle_aware.total_cost_usd / baseline.total_cost_usd) * 100.0,
        idle_aware.spot_share() * 100.0,
        idle_aware.mean_latency_inflation,
        idle_aware.p95_latency_inflation,
        idle_aware.spot_capacity_misses,
    );
    assert!(idle_aware.total_cost_usd < baseline.total_cost_usd);
    Ok(())
}

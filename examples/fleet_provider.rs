//! Fleet-level provider economics: replay a traffic trace against the
//! shared spot market.
//!
//! ```text
//! cargo run --release --example fleet_provider
//! ```
//!
//! Extends §6.2 beyond single placements: all six benchmark functions
//! receive Poisson traffic for five minutes and contend for one
//! provider-wide pool of warm VMs whose supply fluctuates. The
//! idle-aware policy steers invocations onto θ-guardrailed alternate
//! families while the planner-emitted admission controller lets them in,
//! falling back to on-demand otherwise; supply drops demote in-flight
//! spot work back to list price. Compare the provider's bill and the
//! users' latency against the always-best-config baseline.

use faas_freedom::core::fleet::{
    ControlConfig, ControllerConfig, FleetConfig, FleetSimulator, FunctionPlan, PidConfig,
    PlacementStrategy, SupplyProcess, Trace,
};
use faas_freedom::core::market::MarketConfig;
use faas_freedom::optimizer::SearchSpace;
use faas_freedom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Tune every function once and plan its alternate families; the
    //    planner also emits the market's admission policy.
    let planner = IdleCapacityPlanner::default();
    let space = SearchSpace::table1();
    let mut plans = Vec::new();
    for function in FunctionKind::ALL {
        let input = function.default_input();
        let table = collect_ground_truth(function, &input, space.configs(), 3, 42)?;
        let outcome = Autotuner::new(SurrogateKind::Gp).tune_offline(
            function,
            &input,
            Objective::ExecutionTime,
            42,
        )?;
        let plan = planner.plan(&outcome, &table, &space)?;
        println!(
            "{function:<11} best {} | {} alternate families accepted",
            outcome.recommended().expect("tuned"),
            plan.placements.iter().filter(|a| a.accepted).count(),
        );
        plans.push(FunctionPlan {
            function,
            best_config: outcome.recommended().expect("tuned"),
            alternates: plan.placements,
            table,
        });
    }

    // 2. Five minutes of Poisson traffic at 0.5 rps per function.
    let trace = Trace::poisson(300.0, 0.5, 42)?;
    println!("\nreplaying {} invocations...", trace.len());

    // 3. Both policies on the same trace, fleet, and fluctuating
    //    market, replayed as one-minute windows fanned across cores.
    let sim = FleetSimulator::new(plans)?;
    let config = FleetConfig {
        market: MarketConfig {
            vms_per_family: 2,
            supply: SupplyProcess {
                step_secs: 30.0,
                min_fraction: 0.0,
                seed: 42,
            },
            admission: planner.admission_policy(),
            ..MarketConfig::default()
        },
        ..FleetConfig::default()
    };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let baseline = sim.run_windowed(
        &trace,
        PlacementStrategy::BestConfigOnly,
        &config,
        threads,
        60.0,
    )?;
    let idle_aware =
        sim.run_windowed(&trace, PlacementStrategy::IdleAware, &config, threads, 60.0)?;

    println!(
        "\nbaseline  : ${:.4} total, latency inflation 1.000 (by definition)",
        baseline.total_cost_usd
    );
    println!(
        "idle-aware: ${:.4} total ({:.0}% cheaper), {:.0}% from spot, \
         mean latency inflation {:.3}, p95 {:.3}",
        idle_aware.total_cost_usd,
        (1.0 - idle_aware.total_cost_usd / baseline.total_cost_usd) * 100.0,
        idle_aware.spot_share() * 100.0,
        idle_aware.mean_latency_inflation,
        idle_aware.p95_latency_inflation,
    );
    println!(
        "admissions: {} admitted, {} demoted by supply drops, \
         {} rejected ({} policy, {} capacity), {} SLO violations",
        idle_aware.spot_admitted,
        idle_aware.spot_demoted,
        idle_aware.rejected,
        idle_aware.policy_rejections,
        idle_aware.capacity_misses,
        idle_aware.slo_violations,
    );
    assert!(idle_aware.total_cost_usd < baseline.total_cost_usd);

    // 4. Close the loop: a PID controller watches the demotion rate
    //    every 15 s and moves the admission ceiling itself.
    let closed_config = FleetConfig {
        control: ControlConfig {
            cadence_secs: 15.0,
            controller: ControllerConfig::HeadroomPid(PidConfig::default()),
        },
        ..config
    };
    let closed = sim.run_windowed(
        &trace,
        PlacementStrategy::IdleAware,
        &closed_config,
        threads,
        60.0,
    )?;
    let final_ceiling = closed
        .control
        .last()
        .map_or(f64::INFINITY, |sample| sample.ceiling);
    println!(
        "\nclosed loop ({} ticks of pid): ${:.4} total, {} demoted (open loop: {}), \
         {} SLO violations (open loop: {}), final admission ceiling {:.2}",
        closed.control.len(),
        closed.total_cost_usd,
        closed.spot_demoted,
        idle_aware.spot_demoted,
        closed.slo_violations,
        idle_aware.slo_violations,
        final_ceiling,
    );
    Ok(())
}
